/**
 * @file
 * Unit tests for the first-order analytic model (ablation baseline).
 */

#include <gtest/gtest.h>

#include "arch/design_space.hh"
#include "base/statistics.hh"
#include "sim/first_order.hh"
#include "sim/simulator.hh"
#include "trace/suites.hh"
#include "trace/trace_generator.hh"

namespace acdse
{
namespace
{

TEST(FirstOrder, ProducesPositiveComponents)
{
    const Trace t = TraceGenerator(profileByName("gzip")).generate(6000);
    const FirstOrderResult r =
        firstOrderEstimate(DesignSpace::baseline(), t);
    EXPECT_GT(r.cycles, 0.0);
    EXPECT_GT(r.ipcSteadyState, 0.0);
    EXPECT_GE(r.branchPenalty, 0.0);
    EXPECT_GE(r.memoryPenalty, 0.0);
    EXPECT_GE(r.cycles, static_cast<double>(t.size()) /
                            DesignSpace::baseline().width());
}

TEST(FirstOrder, MemoryBoundProgramDominatedByMemoryPenalty)
{
    const Trace t = TraceGenerator(profileByName("mcf")).generate(8000);
    const FirstOrderResult r =
        firstOrderEstimate(DesignSpace::baseline(), t);
    EXPECT_GT(r.memoryPenalty, r.branchPenalty);
    EXPECT_GT(r.memoryPenalty,
              static_cast<double>(t.size()) / r.ipcSteadyState);
}

TEST(FirstOrder, WiderMachineNeverSlower)
{
    const Trace t = TraceGenerator(profileByName("swim")).generate(6000);
    MicroarchConfig narrow = DesignSpace::baseline();
    narrow.set(Param::Width, 2);
    MicroarchConfig wide = DesignSpace::baseline();
    wide.set(Param::Width, 8);
    EXPECT_GE(firstOrderEstimate(narrow, t).cycles,
              firstOrderEstimate(wide, t).cycles);
}

TEST(FirstOrder, BiggerDcacheReducesPredictedCycles)
{
    // Only the L1D varies: a bigger L2 also gets *slower* in the Cacti
    // model, so the clean monotone lever is the L1.
    const Trace t = TraceGenerator(profileByName("vpr")).generate(8000);
    MicroarchConfig small = DesignSpace::baseline();
    small.set(Param::Dl1Size, 8);
    MicroarchConfig big = DesignSpace::baseline();
    big.set(Param::Dl1Size, 128);
    EXPECT_GT(firstOrderEstimate(small, t).cycles,
              firstOrderEstimate(big, t).cycles);
}

TEST(FirstOrder, CorrelatesWithCycleLevelModel)
{
    // The analytic model is cruder than the cycle-level pipeline, but
    // over a set of configurations it must track the same trend.
    const Trace t = TraceGenerator(profileByName("gzip")).generate(8000);
    const auto configs = DesignSpace::sampleValidConfigs(12, 2024);
    std::vector<double> analytic, simulated;
    for (const auto &config : configs) {
        analytic.push_back(firstOrderEstimate(config, t).cycles);
        simulated.push_back(simulate(config, t).metrics.cycles);
    }
    EXPECT_GT(stats::correlation(analytic, simulated), 0.4);
}

} // namespace
} // namespace acdse
