/**
 * @file
 * Unit tests for average-linkage hierarchical clustering (Fig. 5).
 */

#include <gtest/gtest.h>

#include <set>

#include "ml/hierarchical.hh"

namespace acdse
{
namespace
{

/** Distance matrix with two tight pairs and one far outlier. */
std::vector<std::vector<double>>
pairsAndOutlier()
{
    //       a    b    c    d    e(outlier)
    return {{0, 1, 8, 9, 50},
            {1, 0, 9, 8, 50},
            {8, 9, 0, 2, 50},
            {9, 8, 2, 0, 50},
            {50, 50, 50, 50, 0}};
}

TEST(Hierarchical, MergesClosestFirst)
{
    const Dendrogram tree = hierarchicalCluster(pairsAndOutlier());
    ASSERT_EQ(tree.merges.size(), 4u);
    // First merge: a-b at distance 1; second: c-d at 2.
    EXPECT_DOUBLE_EQ(tree.merges[0].height, 1.0);
    EXPECT_DOUBLE_EQ(tree.merges[1].height, 2.0);
    // Heights are non-decreasing for average linkage on a metric.
    for (std::size_t i = 1; i < tree.merges.size(); ++i)
        EXPECT_GE(tree.merges[i].height, tree.merges[i - 1].height);
}

TEST(Hierarchical, OutlierJoinsLast)
{
    const Dendrogram tree = hierarchicalCluster(pairsAndOutlier());
    const auto &last = tree.merges.back();
    // The last merge must involve leaf 4 (the outlier).
    EXPECT_TRUE(last.left == 4 || last.right == 4);
    EXPECT_DOUBLE_EQ(last.height, 50.0);
}

TEST(Hierarchical, IsolationHeightFlagsOutliers)
{
    const Dendrogram tree = hierarchicalCluster(pairsAndOutlier());
    EXPECT_DOUBLE_EQ(tree.isolationHeight(4), 50.0);
    EXPECT_DOUBLE_EQ(tree.isolationHeight(0), 1.0);
    EXPECT_DOUBLE_EQ(tree.isolationHeight(2), 2.0);
}

TEST(Hierarchical, CutIntoTwoSeparatesOutlier)
{
    const Dendrogram tree = hierarchicalCluster(pairsAndOutlier());
    const auto ids = tree.cut(2);
    EXPECT_EQ(ids[0], ids[1]);
    EXPECT_EQ(ids[0], ids[2]);
    EXPECT_EQ(ids[0], ids[3]);
    EXPECT_NE(ids[0], ids[4]);
}

TEST(Hierarchical, CutIntoThreeSeparatesPairs)
{
    const Dendrogram tree = hierarchicalCluster(pairsAndOutlier());
    const auto ids = tree.cut(3);
    EXPECT_EQ(ids[0], ids[1]);
    EXPECT_EQ(ids[2], ids[3]);
    EXPECT_NE(ids[0], ids[2]);
    EXPECT_NE(ids[0], ids[4]);
    EXPECT_NE(ids[2], ids[4]);
}

TEST(Hierarchical, CutIntoNIsIdentity)
{
    const Dendrogram tree = hierarchicalCluster(pairsAndOutlier());
    const auto ids = tree.cut(5);
    std::set<std::size_t> distinct(ids.begin(), ids.end());
    EXPECT_EQ(distinct.size(), 5u);
}

TEST(Hierarchical, MembersCoverSubtrees)
{
    const Dendrogram tree = hierarchicalCluster(pairsAndOutlier());
    const auto all = tree.members(tree.leaves + tree.merges.size() - 1);
    EXPECT_EQ(all.size(), 5u);
    const auto leaf = tree.members(3);
    ASSERT_EQ(leaf.size(), 1u);
    EXPECT_EQ(leaf[0], 3u);
}

TEST(Hierarchical, RenderContainsAllNames)
{
    const Dendrogram tree = hierarchicalCluster(pairsAndOutlier());
    const std::string out =
        tree.render({"alpha", "beta", "gamma", "delta", "omega"});
    for (const char *name :
         {"alpha", "beta", "gamma", "delta", "omega"}) {
        EXPECT_NE(out.find(name), std::string::npos) << name;
    }
}

TEST(Hierarchical, SingleLeaf)
{
    const Dendrogram tree = hierarchicalCluster({{0.0}});
    EXPECT_EQ(tree.leaves, 1u);
    EXPECT_TRUE(tree.merges.empty());
    EXPECT_EQ(tree.render({"solo"}), "- solo\n");
}

TEST(Hierarchical, AverageLinkageValue)
{
    // Three points: a-b at 2; c at 4 from a and 6 from b. After a-b
    // merge, d({a,b}, c) = (4+6)/2 = 5.
    const std::vector<std::vector<double>> dist{
        {0, 2, 4}, {2, 0, 6}, {4, 6, 0}};
    const Dendrogram tree = hierarchicalCluster(dist);
    ASSERT_EQ(tree.merges.size(), 2u);
    EXPECT_DOUBLE_EQ(tree.merges[0].height, 2.0);
    EXPECT_DOUBLE_EQ(tree.merges[1].height, 5.0);
}

} // namespace
} // namespace acdse
