/**
 * @file
 * Hot-swap acceptance tests: publishing a new model version while
 * requests are in flight loses no request, blocks no producer, and
 * every response is bit-identical to a direct prediction on the
 * version stamped into it. A churn test swaps continuously under
 * sustained load and asserts the versions one producer observes never
 * go backwards. These run under TSan and the Clang thread-safety
 * build in CI (suite name "HotSwap" is in both regexes).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "arch/design_space.hh"
#include "serve/prediction_service.hh"

namespace acdse
{
namespace
{

double
synthetic(const MicroarchConfig &config, double scale)
{
    return scale * (800.0 + 3000.0 / config.width() +
                    50.0 * static_cast<double>(config.robSize()) /
                        128.0);
}

ArchitectureCentricPredictor
trainedPredictor(double scale)
{
    const auto train = DesignSpace::sampleValidConfigs(48, 21);
    std::vector<ProgramTrainingSet> sets(2);
    for (int j = 0; j < 2; ++j) {
        sets[j].name = "p" + std::to_string(j);
        sets[j].configs = train;
        for (const auto &c : train)
            sets[j].values.push_back(synthetic(c, scale + 0.1 * j));
    }
    ArchitectureCentricPredictor predictor;
    predictor.trainOffline(sets);
    const auto rc = DesignSpace::sampleValidConfigs(12, 22);
    std::vector<double> responses;
    for (const auto &c : rc)
        responses.push_back(synthetic(c, scale));
    predictor.fitResponses(rc, responses);
    return predictor;
}

ModelArtifact
versionedArtifact(double scale)
{
    ModelArtifact artifact;
    artifact.add(Metric::Cycles, trainedPredictor(scale));
    return artifact;
}

/**
 * Swap once while a producer keeps submitting: every request is
 * answered (none shed at this rate, none lost), and each answer is
 * bit-identical to a direct prediction on whichever artifact version
 * its stamp names.
 */
TEST(HotSwap, SwapUnderLoadIsLossFreeAndBitExact)
{
    const ModelArtifact v1 = versionedArtifact(1.0);
    const ModelArtifact v2 = versionedArtifact(2.0);

    ServeOptions options;
    options.threads = 1;
    PredictionService service(v1, options);
    EXPECT_EQ(service.currentVersion(), 1u);

    const auto queries = DesignSpace::sampleValidConfigs(64, 23);
    constexpr int kRounds = 200;
    // Sanitizer builds slow the drainer more than the swapper; keep
    // producing past kRounds (bounded) until a v2 answer arrives so
    // the test asserts the swap's effect, not a lucky schedule.
    constexpr int kMaxRounds = 50 * kRounds;

    std::atomic<bool> swapped{false};
    std::thread swapper([&] {
        // Let some pre-swap traffic through, then publish v2 once.
        // v2 is pre-trained: publish itself is the only work here.
        while (!swapped.load(std::memory_order_acquire))
            std::this_thread::yield();
        service.publish(v2);
    });

    AsyncBatch batch(queries.size());
    std::uint64_t accepted = 0;
    bool sawV1 = false, sawV2 = false;
    for (int round = 0; round < kRounds || (!sawV2 && round < kMaxRounds);
         ++round) {
        if (round == kRounds / 4)
            swapped.store(true, std::memory_order_release);
        batch.reset();
        for (const auto &query : queries) {
            // The ring is far larger than one batch: nothing sheds,
            // and Accepted means the drainer *must* answer it.
            ASSERT_EQ(service.submit(batch, query),
                      SubmitStatus::Accepted);
            ++accepted;
        }
        batch.wait();
        ASSERT_EQ(batch.submitted(), queries.size());
        ASSERT_EQ(batch.inFlight(), 0u);
        for (std::size_t i = 0; i < queries.size(); ++i) {
            const std::uint64_t version = batch.versions()[i];
            ASSERT_TRUE(version == 1 || version == 2)
                << "round " << round << " row " << i;
            const ModelArtifact &expect = version == 1 ? v1 : v2;
            // Bit-identical to a direct call on the stamped version:
            // the swap never splits or corrupts a prediction.
            ASSERT_EQ(batch.rows()[i].get(Metric::Cycles),
                      expect.predictor(Metric::Cycles)
                          .predict(queries[i]))
                << "round " << round << " row " << i << " version "
                << version;
            (version == 1 ? sawV1 : sawV2) = true;
        }
    }
    swapper.join();

    // Zero requests failed or were shed across the swap.
    const ServiceStats stats = service.stats();
    if constexpr (obs::kEnabled) {
        EXPECT_EQ(stats.requests, accepted);
        EXPECT_EQ(stats.rejected, 0u);
    }
    EXPECT_TRUE(sawV1);
    EXPECT_TRUE(sawV2);
    EXPECT_EQ(service.currentVersion(), 2u);
}

/**
 * Continuous swap churn under sustained multi-producer load: the
 * publisher replaces the model as fast as it can while producers
 * stream requests; every producer's observed version sequence must be
 * non-decreasing (FIFO ring + single drainer + monotonic registry).
 * The nightly flake gate repeats this; see .github/workflows/ci.yml.
 */
TEST(HotSwap, ChurnKeepsVersionsMonotonicPerProducer)
{
    ServeOptions options;
    options.threads = 1;
    PredictionService service(versionedArtifact(1.0), options);

    constexpr int kProducers = 3;
    constexpr int kRoundsPerProducer = 60;
    constexpr int kBatchSize = 16;

    std::atomic<bool> stopSwapping{false};
    std::thread swapper([&] {
        double scale = 1.0;
        while (!stopSwapping.load(std::memory_order_acquire)) {
            scale += 0.25;
            service.publish(versionedArtifact(scale));
        }
    });

    std::atomic<int> failures{0};
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&service, &failures, p] {
            const auto queries =
                DesignSpace::sampleValidConfigs(kBatchSize, 30 + p);
            AsyncBatch batch(kBatchSize);
            std::uint64_t lastVersion = 0;
            for (int round = 0; round < kRoundsPerProducer; ++round) {
                batch.reset();
                for (const auto &query : queries) {
                    while (service.submit(batch, query) !=
                           SubmitStatus::Accepted)
                        std::this_thread::yield();
                }
                batch.wait();
                // FIFO ring + one drainer snapshot per drained chunk
                // means the versions one producer sees never move
                // backwards, swap churn or not.
                for (int i = 0; i < kBatchSize; ++i) {
                    const std::uint64_t version =
                        batch.versions()[i];
                    if (version < lastVersion)
                        failures.fetch_add(1);
                    lastVersion = version;
                }
            }
        });
    }
    for (auto &producer : producers)
        producer.join();
    stopSwapping.store(true, std::memory_order_release);
    swapper.join();

    EXPECT_EQ(failures.load(), 0);
    EXPECT_GT(service.currentVersion(), 1u);
    if constexpr (obs::kEnabled) {
        EXPECT_EQ(service.stats().requests,
                  static_cast<std::uint64_t>(kProducers) *
                      kRoundsPerProducer * kBatchSize);
    }
}

/**
 * The synchronous predict() path also follows swaps: each batch pins
 * one snapshot, so results match the direct artifact bit for bit
 * before and after a publish.
 */
TEST(HotSwap, SyncPredictSeesNewVersionNextBatch)
{
    const ModelArtifact v1 = versionedArtifact(1.0);
    const ModelArtifact v2 = versionedArtifact(3.0);

    ServeOptions options;
    options.threads = 1;
    PredictionService service(v1, options);

    const auto queries = DesignSpace::sampleValidConfigs(8, 27);
    const auto before = service.predict(queries);
    for (std::size_t i = 0; i < queries.size(); ++i)
        EXPECT_EQ(before[i].get(Metric::Cycles),
                  v1.predictor(Metric::Cycles).predict(queries[i]));

    service.publish(versionedArtifact(3.0));

    const auto after = service.predict(queries);
    for (std::size_t i = 0; i < queries.size(); ++i)
        EXPECT_EQ(after[i].get(Metric::Cycles),
                  v2.predictor(Metric::Cycles).predict(queries[i]));
}

} // namespace
} // namespace acdse
