/**
 * @file
 * Integration tests: the whole pipeline (workload generation ->
 * cycle-level simulation -> campaign -> offline ANN training ->
 * response regression) at reduced scale, checking the paper's
 * qualitative claims end to end.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>

#include "core/characterisation.hh"
#include "core/evaluation.hh"

namespace acdse
{
namespace
{

/** A mid-size campaign over heterogeneous programs, cached on disk. */
Campaign &
integrationCampaign()
{
    static Campaign campaign = [] {
        CampaignOptions options;
        options.numConfigs = 96;
        options.traceLength = 4000;
        options.warmupInstructions = 1000;
        options.quiet = true;
        options.cacheDir = (std::filesystem::temp_directory_path() /
                            "acdse_integration")
                               .string();
        std::filesystem::create_directories(options.cacheDir);
        Campaign c({"gzip", "parser", "crafty", "galgel", "eon",
                    "mesa", "twolf", "gap"},
                   options);
        c.ensureComputed();
        return c;
    }();
    return campaign;
}

TEST(Integration, ArchCentricBeatsProgramSpecificAtSmallBudget)
{
    // The paper's central claim (Fig. 13): at an equal, small number
    // of simulations of the new program, the architecture-centric
    // model is more accurate and far better correlated.
    Evaluator ev(integrationCampaign());
    double ac_err = 0, ac_corr = 0, ps_err = 0, ps_corr = 0;
    const std::size_t n = integrationCampaign().programs().size();
    for (std::size_t p = 0; p < n; ++p) {
        const auto ac = ev.evaluateArchCentric(
            p, Metric::Cycles, ev.leaveOneOut(p), 64, 16, 321);
        const auto ps =
            ev.evaluateProgramSpecific(p, Metric::Cycles, 16, 321);
        ac_err += ac.rmaePercent;
        ac_corr += ac.correlation;
        ps_err += ps.rmaePercent;
        ps_corr += ps.correlation;
    }
    EXPECT_LT(ac_err, ps_err);
    EXPECT_GT(ac_corr, ps_corr);
}

TEST(Integration, ArchCentricQualityIsUsable)
{
    Evaluator ev(integrationCampaign());
    const auto q = ev.evaluateArchCentric(
        0, Metric::Energy, ev.leaveOneOut(0), 64, 16, 77);
    EXPECT_LT(q.rmaePercent, 30.0);
    EXPECT_GT(q.correlation, 0.6);
}

TEST(Integration, MoreResponsesDoNotHurt)
{
    Evaluator ev(integrationCampaign());
    const auto few = ev.evaluateArchCentric(
        1, Metric::Cycles, ev.leaveOneOut(1), 64, 4, 55);
    const auto many = ev.evaluateArchCentric(
        1, Metric::Cycles, ev.leaveOneOut(1), 64, 32, 55);
    EXPECT_LE(many.rmaePercent, few.rmaePercent * 1.3);
}

TEST(Integration, SpacesDifferAcrossPrograms)
{
    // Programs must not collapse to one shape, or cross-program
    // learning would be trivial (Section 4).
    auto dist =
        programDistanceMatrix(integrationCampaign(), Metric::Cycles);
    double max_d = 0.0;
    for (const auto &row : dist)
        for (double d : row)
            max_d = std::max(max_d, d);
    EXPECT_GT(max_d, 0.5);
}

TEST(Integration, EnergyAndCyclesDisagreeOnBestConfig)
{
    // The performance-optimal and energy-optimal corners of the space
    // must differ (otherwise ED/EDD would be pointless).
    Campaign &campaign = integrationCampaign();
    const auto cycles = campaign.metricRow(0, Metric::Cycles);
    const auto energy = campaign.metricRow(0, Metric::Energy);
    const std::size_t best_cycles =
        std::min_element(cycles.begin(), cycles.end()) - cycles.begin();
    const std::size_t best_energy =
        std::min_element(energy.begin(), energy.end()) - energy.begin();
    EXPECT_NE(best_cycles, best_energy);
}

TEST(Integration, TrainingErrorTracksTestError)
{
    // Paper Sections 7.2/7.3: training error is a usable proxy for
    // test error. Check rank agreement loosely: the program with the
    // largest training error should not have the smallest test error.
    Evaluator ev(integrationCampaign());
    std::vector<double> train_err, test_err;
    const std::size_t n = integrationCampaign().programs().size();
    for (std::size_t p = 0; p < n; ++p) {
        const auto q = ev.evaluateArchCentric(
            p, Metric::Cycles, ev.leaveOneOut(p), 64, 16, 11);
        train_err.push_back(q.trainingErrorPercent);
        test_err.push_back(q.rmaePercent);
    }
    const std::size_t worst_train =
        std::max_element(train_err.begin(), train_err.end()) -
        train_err.begin();
    const std::size_t best_test =
        std::min_element(test_err.begin(), test_err.end()) -
        test_err.begin();
    EXPECT_NE(worst_train, best_test);
}

} // namespace
} // namespace acdse
