/**
 * @file
 * Unit and property tests for the job system substrate: the
 * checksummed journal (base/journal.hh), the journal-backed queue
 * state machine (jobs/job_queue.hh) and the campaign job plan
 * (jobs/campaign_jobs.hh).
 *
 * The journal corruption sweeps mirror test_model_store: every
 * truncation point and every sampled bit flip of an encoded journal
 * must yield either a verified *prefix* of the original records or a
 * typed JournalError -- never a silently different replay.
 *
 * The concurrency suite is the exactly-once property: any number of
 * JobQueue handles (one per thread here, one per process in the crash
 * suite) draining one journal execute every job exactly once per
 * successful attempt. These suites are in the PR TSan gate (the
 * `|Jobs` regex in CI), so they must stay sleep-free.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "base/binary_io.hh"
#include "base/journal.hh"
#include "core/campaign.hh"
#include "jobs/campaign_jobs.hh"
#include "jobs/job_queue.hh"

namespace acdse
{
namespace
{

namespace fs = std::filesystem;
using jobs::CampaignJobPlan;
using jobs::ClaimResult;
using jobs::JobError;
using jobs::JobQueue;
using jobs::JobSpec;
using jobs::JobState;
using jobs::QueueSnapshot;

fs::path
freshDir(const std::string &name)
{
    const fs::path dir = fs::temp_directory_path() / name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

std::string
readBytes(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

// ---------------------------------------------------------------------
// JobsJournal
// ---------------------------------------------------------------------

TEST(JobsJournal, AppendReplayRoundTrip)
{
    const fs::path dir = freshDir("acdse_jobs_journal_rt");
    Journal journal((dir / "j.journal").string());
    EXPECT_FALSE(journal.exists());
    EXPECT_TRUE(journal.replay().records.empty()); // missing = empty

    journal.append({"plan", "abc123"});
    journal.append({"job", "sim0", "simulate-shard", "0", "0"});
    journal.append({"gen", "1"});
    EXPECT_TRUE(journal.exists());

    const JournalReplay replay = journal.replay();
    EXPECT_FALSE(replay.tornTail);
    ASSERT_EQ(replay.records.size(), 3u);
    EXPECT_EQ(replay.records[0],
              (std::vector<std::string>{"plan", "abc123"}));
    EXPECT_EQ(replay.records[1],
              (std::vector<std::string>{"job", "sim0",
                                        "simulate-shard", "0", "0"}));
    EXPECT_EQ(replay.records[2],
              (std::vector<std::string>{"gen", "1"}));
}

TEST(JobsJournal, TornTailIsDroppedAndRepairable)
{
    const fs::path dir = freshDir("acdse_jobs_journal_torn");
    const fs::path path = dir / "j.journal";
    Journal journal(path.string());
    journal.append({"plan", "abc"});
    journal.append({"done", "sim0"});

    // Simulate a writer SIGKILL'd mid-append: valid lines plus a
    // partial one, no trailing newline.
    const std::string full = readBytes(path);
    const std::string partial =
        Journal::formatRecord({"done", "sim1"}).substr(0, 9);
    {
        std::ofstream out(path, // NOLINT(acdse-atomic-write)
                          std::ios::binary | std::ios::app);
        out << partial;
    }

    JournalReplay replay = journal.replay();
    EXPECT_TRUE(replay.tornTail);
    ASSERT_EQ(replay.records.size(), 2u);
    EXPECT_EQ(replay.validBytes, full.size());

    // repair() truncates the tail so a fresh append cannot splice
    // onto partial bytes.
    journal.repair(replay);
    journal.append({"done", "sim2"});
    replay = journal.replay();
    EXPECT_FALSE(replay.tornTail);
    ASSERT_EQ(replay.records.size(), 3u);
    EXPECT_EQ(replay.records[2],
              (std::vector<std::string>{"done", "sim2"}));
}

TEST(JobsJournal, DamagedInteriorLinesAreTypedErrors)
{
    const std::string good = Journal::formatRecord({"done", "sim0"});
    // A record with a valid-looking shape but a wrong checksum.
    std::string wrongCrc = good;
    wrongCrc[wrongCrc.size() - 2] =
        wrongCrc[wrongCrc.size() - 2] == '0' ? '1' : '0';
    EXPECT_THROW(Journal::decode(wrongCrc), JournalError);
    // Not hex at all.
    EXPECT_THROW(Journal::decode("J1,done,sim0,zzzz\n"), JournalError);
    // No checksum separator.
    EXPECT_THROW(Journal::decode("J1donesim0\n"), JournalError);
    // Wrong magic with a checksum that matches its content: decode
    // must still reject the record type.
    std::string content = "J2,done,sim0";
    char crc[17];
    std::snprintf(crc, sizeof(crc), "%016llx",
                  static_cast<unsigned long long>(fnv1a64(content)));
    EXPECT_THROW(Journal::decode(content + "," + crc + "\n"),
                 JournalError);
}

/**
 * Build a representative journal image: the record mix a real
 * campaign run leaves behind.
 */
std::string
recordedJournalImage()
{
    std::string bytes;
    bytes += Journal::formatRecord({"plan", "00ff00ff00ff00ff"});
    bytes += Journal::formatRecord(
        {"job", "sim0", "simulate-shard", "0", "0"});
    bytes += Journal::formatRecord(
        {"job", "train_gzip_m0", "train-program", "1", "gzip:0"});
    bytes += Journal::formatRecord(
        {"job", "fit_m0", "fit-responses", "2", "0"});
    bytes += Journal::formatRecord({"gen", "1"});
    bytes += Journal::formatRecord({"start", "sim0", "1", "1"});
    bytes += Journal::formatRecord({"fail", "sim0"});
    bytes += Journal::formatRecord({"start", "sim0", "1", "2"});
    bytes += Journal::formatRecord({"done", "sim0"});
    bytes += Journal::formatRecord({"gen", "2"});
    bytes += Journal::formatRecord({"start", "train_gzip_m0", "2", "1"});
    return bytes;
}

/** Whether @p got is a prefix of the reference record list. */
testing::AssertionResult
isRecordPrefix(const std::vector<std::vector<std::string>> &reference,
               const std::vector<std::vector<std::string>> &got)
{
    if (got.size() > reference.size())
        return testing::AssertionFailure()
               << "replay has " << got.size() << " records, original "
               << reference.size();
    for (std::size_t i = 0; i < got.size(); ++i) {
        if (got[i] != reference[i])
            return testing::AssertionFailure()
                   << "record " << i << " differs from the original";
    }
    return testing::AssertionSuccess();
}

TEST(JobsJournal, EveryTruncationReplaysAVerifiedPrefix)
{
    const std::string bytes = recordedJournalImage();
    const auto reference = Journal::decode(bytes).records;
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
        const JournalReplay replay =
            Journal::decode(std::string_view(bytes).substr(0, cut));
        EXPECT_TRUE(isRecordPrefix(reference, replay.records))
            << "at truncation " << cut;
        // A cut mid-line leaves partial bytes and must be flagged as
        // a torn tail; a cut at a record boundary just looks like a
        // shorter (complete) journal.
        EXPECT_EQ(replay.tornTail, replay.validBytes < cut)
            << "at truncation " << cut;
        EXPECT_LE(replay.validBytes, cut);
    }
}

TEST(JobsJournal, EveryBitFlipIsPrefixOrTypedError)
{
    const std::string bytes = recordedJournalImage();
    const auto reference = Journal::decode(bytes).records;
    // Every byte, a sample of bit positions (the sweep over all eight
    // bits triples the runtime for no new failure modes).
    for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
        for (const unsigned bit : {0u, 3u, 7u}) {
            std::string flipped = bytes;
            flipped[pos] = static_cast<char>(
                static_cast<unsigned char>(flipped[pos]) ^ (1u << bit));
            try {
                const JournalReplay replay = Journal::decode(flipped);
                // Accepted: every surviving record must be verbatim
                // from the original -- a flip may only cost a suffix
                // (by turning a byte into/away from a newline), never
                // alter a record silently.
                EXPECT_TRUE(isRecordPrefix(reference, replay.records))
                    << "flip at byte " << pos << " bit " << bit;
            } catch (const JournalError &) {
                // Typed rejection is the other acceptable outcome.
            }
        }
    }
}

// ---------------------------------------------------------------------
// JobsQueue
// ---------------------------------------------------------------------

std::vector<JobSpec>
threePhaseJobs()
{
    return {
        {"sim0", "simulate-shard", 0, "0"},
        {"sim1", "simulate-shard", 0, "1"},
        {"train0", "train-program", 1, "gzip:0"},
        {"fit0", "fit-responses", 2, "0"},
    };
}

TEST(JobsQueue, PhaseBarrierOrdersClaims)
{
    const fs::path dir = freshDir("acdse_jobs_queue_phase");
    JobQueue queue(dir.string(), "q");
    EXPECT_EQ(queue.open("hash1", threePhaseJobs()), 1u);

    JobSpec job;
    int attempt = 0;
    ASSERT_EQ(queue.claim(job, attempt), ClaimResult::Claimed);
    EXPECT_EQ(job.id, "sim0");
    EXPECT_EQ(attempt, 1);
    ASSERT_EQ(queue.claim(job, attempt), ClaimResult::Claimed);
    EXPECT_EQ(job.id, "sim1");

    // Phase 1 must wait for the running phase-0 jobs.
    EXPECT_EQ(queue.claim(job, attempt), ClaimResult::Wait);
    queue.complete("sim0");
    EXPECT_EQ(queue.claim(job, attempt), ClaimResult::Wait);
    queue.complete("sim1");

    ASSERT_EQ(queue.claim(job, attempt), ClaimResult::Claimed);
    EXPECT_EQ(job.id, "train0");
    queue.complete("train0");
    ASSERT_EQ(queue.claim(job, attempt), ClaimResult::Claimed);
    EXPECT_EQ(job.id, "fit0");
    queue.complete("fit0");
    EXPECT_EQ(queue.claim(job, attempt), ClaimResult::Drained);

    const QueueSnapshot snap = queue.snapshot();
    EXPECT_TRUE(snap.drained());
    EXPECT_FALSE(snap.stuck());
    EXPECT_EQ(snap.planHash, "hash1");
}

TEST(JobsQueue, RetriesUntilPermanentFailure)
{
    const fs::path dir = freshDir("acdse_jobs_queue_retry");
    JobQueue queue(dir.string(), "q");
    queue.open("h", {{"solo", "simulate-shard", 0, "0"}});

    JobSpec job;
    int attempt = 0;
    for (int expected = 1; expected <= JobQueue::kMaxAttempts;
         ++expected) {
        ASSERT_EQ(queue.claim(job, attempt), ClaimResult::Claimed);
        EXPECT_EQ(attempt, expected);
        queue.fail("solo");
    }
    EXPECT_EQ(queue.claim(job, attempt), ClaimResult::Stuck);
    const QueueSnapshot snap = queue.snapshot();
    EXPECT_TRUE(snap.stuck());
    ASSERT_EQ(snap.jobs.size(), 1u);
    EXPECT_EQ(snap.jobs[0].state, JobState::Failed);
    EXPECT_EQ(snap.jobs[0].attempts, JobQueue::kMaxAttempts);
}

TEST(JobsQueue, ResumeReclaimsAbandonedJobs)
{
    const fs::path dir = freshDir("acdse_jobs_queue_abandon");
    const auto jobs = threePhaseJobs();
    JobSpec job;
    int attempt = 0;
    {
        JobQueue session1(dir.string(), "q");
        EXPECT_EQ(session1.open("h", jobs), 1u);
        ASSERT_EQ(session1.claim(job, attempt), ClaimResult::Claimed);
        EXPECT_EQ(job.id, "sim0");
        // The session dies here without completing sim0.
    }
    JobQueue session2(dir.string(), "q");
    EXPECT_EQ(session2.open("h", jobs), 2u);
    // sim0 is Running at generation 1 < 2: abandoned, so the new
    // session reclaims it first (claim scans in plan order).
    ASSERT_EQ(session2.claim(job, attempt), ClaimResult::Claimed)
        << "running-at-older-generation job must be reclaimable";
    EXPECT_EQ(job.id, "sim0");
    EXPECT_EQ(attempt, 2);
    ASSERT_EQ(session2.claim(job, attempt), ClaimResult::Claimed);
    EXPECT_EQ(job.id, "sim1");
    EXPECT_EQ(attempt, 1);
}

TEST(JobsQueue, RejectsForeignPlansAndJobSets)
{
    const fs::path dir = freshDir("acdse_jobs_queue_foreign");
    JobQueue queue(dir.string(), "q");
    queue.open("hash1", threePhaseJobs());

    JobQueue other(dir.string(), "q");
    EXPECT_THROW(other.open("hash2", threePhaseJobs()), JournalError);
    auto fewer = threePhaseJobs();
    fewer.pop_back();
    EXPECT_THROW(other.open("hash1", fewer), JournalError);
    EXPECT_THROW(other.attach("hash2"), JournalError);
    EXPECT_NO_THROW(other.attach("hash1"));
}

TEST(JobsQueue, SnapshotIsReadOnly)
{
    const fs::path dir = freshDir("acdse_jobs_queue_snapshot");
    JobQueue queue(dir.string(), "q");
    queue.open("h", threePhaseJobs());
    const std::string before =
        readBytes(fs::path(queue.journalPath()));
    const QueueSnapshot snap = queue.snapshot();
    EXPECT_EQ(snap.generation, 1u);
    EXPECT_EQ(readBytes(fs::path(queue.journalPath())), before);
}

// ---------------------------------------------------------------------
// JobsConcurrency: the exactly-once property
// ---------------------------------------------------------------------

TEST(JobsConcurrency, EveryJobExecutesExactlyOnce)
{
    const fs::path dir = freshDir("acdse_jobs_conc_once");
    constexpr std::size_t kJobs = 48;
    constexpr std::size_t kThreads = 4;
    std::vector<JobSpec> jobs;
    for (std::size_t j = 0; j < kJobs; ++j) {
        jobs.push_back({"job" + std::to_string(j), "simulate-shard",
                        j / 24, std::to_string(j)});
    }
    {
        JobQueue opener(dir.string(), "q");
        opener.open("h", jobs);
    }

    std::vector<std::atomic<int>> executions(kJobs);
    std::vector<std::thread> workers;
    for (std::size_t t = 0; t < kThreads; ++t) {
        workers.emplace_back([&dir, &executions] {
            // Each worker holds its own queue handle (own lock fd),
            // exactly like a worker process would.
            JobQueue queue(dir.string(), "q");
            queue.attach("h");
            for (;;) {
                JobSpec job;
                int attempt = 0;
                const ClaimResult result = queue.claim(job, attempt);
                if (result == ClaimResult::Drained ||
                    result == ClaimResult::Stuck) {
                    break;
                }
                if (result == ClaimResult::Wait) {
                    std::this_thread::yield();
                    continue;
                }
                executions[std::stoul(job.arg)].fetch_add(1);
                queue.complete(job.id);
            }
        });
    }
    for (auto &worker : workers)
        worker.join();

    for (std::size_t j = 0; j < kJobs; ++j)
        EXPECT_EQ(executions[j].load(), 1) << "job " << j;
    JobQueue check(dir.string(), "q");
    EXPECT_TRUE(check.snapshot().drained());
}

TEST(JobsConcurrency, FailedAttemptsRetryWithoutDoubleExecution)
{
    const fs::path dir = freshDir("acdse_jobs_conc_retry");
    constexpr std::size_t kJobs = 30;
    constexpr std::size_t kThreads = 4;
    std::vector<JobSpec> jobs;
    for (std::size_t j = 0; j < kJobs; ++j) {
        jobs.push_back({"job" + std::to_string(j), "simulate-shard", 0,
                        std::to_string(j)});
    }
    {
        JobQueue opener(dir.string(), "q");
        opener.open("h", jobs);
    }

    // Every third job fails its first attempt; the queue must hand it
    // out exactly once more.
    std::vector<std::atomic<int>> executions(kJobs);
    std::vector<std::thread> workers;
    for (std::size_t t = 0; t < kThreads; ++t) {
        workers.emplace_back([&dir, &executions] {
            JobQueue queue(dir.string(), "q");
            queue.attach("h");
            for (;;) {
                JobSpec job;
                int attempt = 0;
                const ClaimResult result = queue.claim(job, attempt);
                if (result == ClaimResult::Drained ||
                    result == ClaimResult::Stuck) {
                    break;
                }
                if (result == ClaimResult::Wait) {
                    std::this_thread::yield();
                    continue;
                }
                const std::size_t idx = std::stoul(job.arg);
                executions[idx].fetch_add(1);
                if (idx % 3 == 0 && attempt == 1)
                    queue.fail(job.id);
                else
                    queue.complete(job.id);
            }
        });
    }
    for (auto &worker : workers)
        worker.join();

    for (std::size_t j = 0; j < kJobs; ++j)
        EXPECT_EQ(executions[j].load(), j % 3 == 0 ? 2 : 1)
            << "job " << j;
    JobQueue check(dir.string(), "q");
    EXPECT_TRUE(check.snapshot().drained());
}

// ---------------------------------------------------------------------
// JobsPlan: the campaign plan, including the cache-key collision fix
// ---------------------------------------------------------------------

CampaignJobPlan
smallPlan(const std::string &dir)
{
    CampaignJobPlan plan;
    plan.programs = {"gzip", "mcf", "vpr"};
    plan.options.numConfigs = 24;
    plan.options.traceLength = 1200;
    plan.options.warmupInstructions = 200;
    plan.options.cacheDir = dir;
    plan.options.quiet = true;
    plan.shardCells = 30;
    plan.trainIdx = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11};
    plan.responseIdx = {12, 13, 14, 15, 16, 17, 18, 19};
    plan.metrics = {0, 1};
    plan.newProgram = "vpr";
    return plan;
}

TEST(JobsPlan, CacheKeySeparatesSeedsAndProgramSets)
{
    // Regression for the shared-ACDSE_CACHE_DIR collision: two
    // campaigns differing only in seed (or only in program set) must
    // key every job-system artifact differently.
    const CampaignJobPlan base = smallPlan(".");
    CampaignJobPlan otherSeed = base;
    otherSeed.options.configSeed += 1;
    CampaignJobPlan otherPrograms = base;
    otherPrograms.programs = {"gzip", "mcf", "twolf"};
    otherPrograms.newProgram = "twolf";

    EXPECT_NE(base.key(), otherSeed.key());
    EXPECT_NE(base.key(), otherPrograms.key());
    EXPECT_NE(base.journalName(), otherSeed.journalName());
    EXPECT_NE(base.planPath(), otherSeed.planPath());
    EXPECT_NE(base.shardPath(0), otherSeed.shardPath(0));
    EXPECT_NE(base.shardPath(0), otherPrograms.shardPath(0));
    EXPECT_NE(base.modelPath("gzip", 0),
              otherSeed.modelPath("gzip", 0));
    EXPECT_NE(base.predictorPath(0), otherSeed.predictorPath(0));
    EXPECT_NE(base.planHash(), otherSeed.planHash());

    // The static helper agrees with Campaign's own idea of the key.
    EXPECT_EQ(base.key(),
              Campaign::cacheKeyFor(base.programs, base.options));
}

TEST(JobsPlan, JobExpansionAndPhases)
{
    const CampaignJobPlan plan = smallPlan(".");
    EXPECT_EQ(plan.numCells(), 72u);
    EXPECT_EQ(plan.numShards(), 3u); // 30 + 30 + 12
    EXPECT_EQ(plan.shardCellsOf(2).size(), 12u);
    EXPECT_EQ(plan.trainPrograms(),
              (std::vector<std::string>{"gzip", "mcf"}));

    const std::vector<JobSpec> jobs = plan.jobs();
    // 3 shards + 2 training programs x 2 metrics + 2 fits.
    ASSERT_EQ(jobs.size(), 9u);
    for (const auto &spec : jobs) {
        if (spec.kind == "simulate-shard")
            EXPECT_EQ(spec.phase, 0u);
        else if (spec.kind == "train-program")
            EXPECT_EQ(spec.phase, 1u);
        else
            EXPECT_EQ(spec.phase, 2u);
    }
}

TEST(JobsPlan, SaveLoadRoundTripRebindsDirectory)
{
    const fs::path dir = freshDir("acdse_jobs_plan_rt");
    const CampaignJobPlan plan = smallPlan(dir.string());
    plan.save();

    const CampaignJobPlan loaded =
        CampaignJobPlan::load(plan.planPath());
    EXPECT_EQ(loaded.programs, plan.programs);
    EXPECT_EQ(loaded.options.numConfigs, plan.options.numConfigs);
    EXPECT_EQ(loaded.options.configSeed, plan.options.configSeed);
    EXPECT_EQ(loaded.trainIdx, plan.trainIdx);
    EXPECT_EQ(loaded.responseIdx, plan.responseIdx);
    EXPECT_EQ(loaded.metrics, plan.metrics);
    EXPECT_EQ(loaded.newProgram, plan.newProgram);
    EXPECT_EQ(loaded.planHash(), plan.planHash());
    EXPECT_EQ(loaded.options.cacheDir, dir.string());

    // A moved run directory keeps working: cacheDir rebinds to the
    // plan's actual location.
    const fs::path moved = freshDir("acdse_jobs_plan_rt_moved");
    fs::copy_file(plan.planPath(),
                  moved / fs::path(plan.planPath()).filename());
    const CampaignJobPlan relocated = CampaignJobPlan::load(
        (moved / fs::path(plan.planPath()).filename()).string());
    EXPECT_EQ(relocated.options.cacheDir, moved.string());
    EXPECT_EQ(relocated.planHash(), plan.planHash());
}

TEST(JobsPlan, LoadRejectsDamagedPlans)
{
    const fs::path dir = freshDir("acdse_jobs_plan_bad");
    const CampaignJobPlan plan = smallPlan(dir.string());
    plan.save();

    EXPECT_THROW(CampaignJobPlan::load((dir / "nope.csv").string()),
                 JobError);

    // Tamper with a parameter: the recorded campaign key no longer
    // matches the recomputed one.
    std::string text = readBytes(fs::path(plan.planPath()));
    const std::string needle = "seed,";
    const std::size_t at = text.find(needle);
    ASSERT_NE(at, std::string::npos);
    text.insert(at + needle.size(), "9");
    const fs::path tampered = dir / "tampered.plan.csv";
    {
        std::ofstream out(tampered, // NOLINT(acdse-atomic-write)
                          std::ios::binary);
        out << text;
    }
    EXPECT_THROW(CampaignJobPlan::load(tampered.string()), JobError);

    CampaignJobPlan invalid = plan;
    invalid.newProgram = "not-a-program";
    EXPECT_THROW(invalid.validate(), JobError);
    invalid = plan;
    invalid.trainIdx = {999};
    EXPECT_THROW(invalid.validate(), JobError);
    invalid = plan;
    invalid.programs = {"vpr"};
    EXPECT_THROW(invalid.validate(), JobError);
}

} // namespace
} // namespace acdse
