/**
 * @file
 * Kill/resume fault-injection suite for the campaign job server,
 * driving real `acdse-jobs` worker processes as subprocesses.
 *
 * The contract under test: a campaign job run SIGKILL'd at *any*
 * point -- between jobs (ACDSE_JOBS_KILL_AFTER), mid-shard inside the
 * simulator loop (ACDSE_JOBS_KILL_IN), or via artificial journal
 * damage -- either resumes to artifacts byte-identical to an
 * uninterrupted run, or fails with a typed error. Never a silently
 * different result.
 *
 * Everything is pinned single-threaded with a tiny campaign (24
 * configurations x 3 programs, 1200-instruction traces) so one full
 * 9-job run takes tens of milliseconds; even the kill-at-every-
 * boundary chain stays well inside CI budget.
 *
 * The binary path arrives as the ACDSE_TOOL_JOBS compile definition
 * from tests/CMakeLists.txt. The suite name deliberately avoids the
 * `Jobs` substring: these tests fork multi-process trees and belong
 * in the regular test job, not the TSan `-R` regex.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "base/journal.hh"
#include "jobs/campaign_jobs.hh"
#include "json_reader.hh"

namespace acdse
{
namespace
{

namespace fs = std::filesystem;

struct RunResult
{
    int exitCode = -1;
    std::string output; //!< merged stdout+stderr
};

/** Run @p command under `sh -c` in @p dir, capturing exit + output. */
RunResult
run(const fs::path &dir, const std::string &command)
{
    const fs::path log = dir / "run.log";
    const std::string wrapped =
        "cd '" + dir.string() + "' && { " + command + " ; } > '" +
        log.string() + "' 2>&1";
    const int status = std::system(wrapped.c_str());
    RunResult result;
    result.exitCode =
        WIFEXITED(status) ? WEXITSTATUS(status) : -WTERMSIG(status);
    std::ifstream in(log);
    std::ostringstream text;
    text << in.rdbuf();
    result.output = text.str();
    return result;
}

fs::path
freshDir(const std::string &name)
{
    const fs::path dir = fs::temp_directory_path() / name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

std::string
readBytes(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

/**
 * The pinned tiny-campaign invocation every test shares: 3 programs x
 * 24 configs = 72 cells in 3 shards of 30, two metrics -> 9 jobs
 * (3 simulate-shard, 4 train-program, 2 fit-responses).
 */
std::string
jobsCmd(const std::string &subcommand)
{
    return std::string("ACDSE_THREADS=1 ACDSE_CONFIGS=24 "
                       "ACDSE_TRACE_LEN=1200 ACDSE_WARMUP=200 ") +
           ACDSE_TOOL_JOBS + " " + subcommand;
}

std::string
runArgs(std::size_t workers)
{
    return "run --dir . --workers " + std::to_string(workers) +
           " --programs gzip,mcf --target vpr"
           " --train 12 --responses 8 --shard-cells 30";
}

/** Find the single file in @p dir matching prefix/suffix. */
fs::path
findFile(const fs::path &dir, const std::string &prefix,
         const std::string &suffix)
{
    std::vector<fs::path> found;
    for (const auto &entry : fs::directory_iterator(dir)) {
        const std::string name = entry.path().filename().string();
        if (name.starts_with(prefix) && name.ends_with(suffix))
            found.push_back(entry.path());
    }
    EXPECT_EQ(found.size(), 1u)
        << prefix << "*" << suffix << " in " << dir;
    return found.empty() ? fs::path() : found.front();
}

/**
 * The uninterrupted single-worker reference run, built once per test
 * binary. Every fault-injection test byte-compares against this.
 */
const fs::path &
referenceDir()
{
    static const fs::path dir = [] {
        const fs::path d = freshDir("acdse_crash_reference");
        const RunResult result = run(d, jobsCmd(runArgs(1)));
        EXPECT_EQ(result.exitCode, 0) << result.output;
        return d;
    }();
    return dir;
}

/**
 * Assert the final artifacts in @p got are byte-identical to the
 * reference run: the merged campaign cache CSV, both per-metric
 * predictor ensembles and all four per-program model checkpoints.
 */
void
expectArtifactsMatchReference(const fs::path &got)
{
    const fs::path &ref = referenceDir();
    std::size_t cacheFiles = 0, predictors = 0, models = 0;
    for (const auto &entry : fs::directory_iterator(ref)) {
        const std::string name = entry.path().filename().string();
        if (name.starts_with("acdse_campaign_") &&
            name.ends_with(".csv")) {
            ++cacheFiles;
        } else if (name.find(".predictor_m") != std::string::npos) {
            ++predictors;
        } else if (name.find(".model_") != std::string::npos) {
            ++models;
        } else {
            continue;
        }
        ASSERT_TRUE(fs::exists(got / name)) << "missing " << name;
        EXPECT_TRUE(readBytes(got / name) == readBytes(entry.path()))
            << name << " differs from the uninterrupted run";
    }
    EXPECT_EQ(cacheFiles, 1u);
    EXPECT_EQ(predictors, 2u);
    EXPECT_EQ(models, 4u);
}

/** Parse `acdse-jobs status` output for @p dir. */
testjson::Value
statusOf(const fs::path &dir, int expectExit)
{
    const RunResult result = run(dir, jobsCmd("status --dir ."));
    EXPECT_EQ(result.exitCode, expectExit) << result.output;
    return testjson::parse(result.output);
}

// ---------------------------------------------------------------------

TEST(CrashResume, InProcessPathMatchesJobServer)
{
    // The job server and the pre-existing in-process path
    // (Campaign::ensureComputed + trainOffline/fitResponses) must
    // produce byte-identical caches and predictor ensembles.
    const fs::path inproc = freshDir("acdse_crash_inprocess");
    jobs::CampaignJobPlan plan;
    plan.programs = {"gzip", "mcf", "vpr"};
    plan.options.numConfigs = 24;
    plan.options.traceLength = 1200;
    plan.options.warmupInstructions = 200;
    plan.options.threads = 1;
    plan.options.quiet = true;
    plan.options.cacheDir = inproc.string();
    plan.shardCells = 30;
    for (std::size_t c = 0; c < 12; ++c)
        plan.trainIdx.push_back(c);
    for (std::size_t c = 12; c < 20; ++c)
        plan.responseIdx.push_back(c);
    plan.metrics = {0, 1};
    plan.newProgram = "vpr";

    jobs::CampaignJobRunner runner(plan);
    runner.runInProcess();

    const fs::path &ref = referenceDir();
    for (const auto &entry : fs::directory_iterator(ref)) {
        const std::string name = entry.path().filename().string();
        const bool cache = name.starts_with("acdse_campaign_") &&
                           name.ends_with(".csv");
        if (!cache && name.find(".predictor_m") == std::string::npos)
            continue; // in-process writes no shard/model checkpoints
        ASSERT_TRUE(fs::exists(inproc / name)) << "missing " << name;
        EXPECT_TRUE(readBytes(inproc / name) ==
                    readBytes(entry.path()))
            << name << " differs between job server and in-process";
    }
}

TEST(CrashResume, KillAtEveryJobBoundary)
{
    // Kill the worker after every single job: the run crosses every
    // shard/training boundary the plan has, one resume per boundary.
    const fs::path dir = freshDir("acdse_crash_boundary");
    const std::string kill = "ACDSE_JOBS_KILL_AFTER=0:1 ";
    RunResult result = run(dir, kill + jobsCmd(runArgs(1)));
    int sessions = 1;
    while (result.exitCode == 3 && sessions < 40) {
        ++sessions;
        result = run(dir, kill + jobsCmd("resume --dir . --workers 1"));
    }
    ASSERT_EQ(result.exitCode, 0) << result.output;
    // 9 jobs -> 9 killed sessions + 1 that finds the queue drained.
    EXPECT_EQ(sessions, 10) << "kill chain length changed";
    expectArtifactsMatchReference(dir);

    const testjson::Value status = statusOf(dir, 0);
    EXPECT_EQ(status.at("schema").asString(), "acdse-jobs-status-v1");
    EXPECT_EQ(status.at("jobs").at("done").asNumber(), 9.0);
    EXPECT_TRUE(status.at("drained").boolean);
    // Ten sessions = ten journal generations.
    EXPECT_EQ(status.at("generation").asNumber(), 10.0);
}

TEST(CrashResume, KillMidShard)
{
    // SIGKILL inside the simulation loop, 5 cells into shard 1: the
    // partially simulated shard has no checkpoint, so resume redoes
    // it from scratch and the artifacts still match bit for bit.
    const fs::path dir = freshDir("acdse_crash_midshard");
    RunResult result =
        run(dir, "ACDSE_JOBS_KILL_IN=sim1@5 " + jobsCmd(runArgs(1)));
    ASSERT_EQ(result.exitCode, 3) << result.output;

    const testjson::Value status = statusOf(dir, 0);
    EXPECT_EQ(status.at("jobs").at("running").asNumber(), 1.0)
        << "the killed job should still be recorded as running";
    bool sawAbandoned = false;
    for (const auto &job : status.at("states").array) {
        if (job.at("id").asString() == "sim1") {
            EXPECT_EQ(job.at("state").asString(), "running");
            sawAbandoned = true;
        }
    }
    EXPECT_TRUE(sawAbandoned);
    // The interrupted shard left no checkpoint: atomic rename means
    // the file appears complete or not at all.
    bool shard1Checkpoint = false;
    for (const auto &entry : fs::directory_iterator(dir)) {
        if (entry.path().filename().string().ends_with(".shard1.csv"))
            shard1Checkpoint = true;
    }
    EXPECT_FALSE(shard1Checkpoint);

    result = run(dir, jobsCmd("resume --dir . --workers 1"));
    ASSERT_EQ(result.exitCode, 0) << result.output;
    expectArtifactsMatchReference(dir);
}

TEST(CrashResume, MultiWorkerKillAndResume)
{
    // Satellite 1's worker matrix: with 1, 2 and 4 workers, kill
    // worker 0 after its first job, resume with the same worker
    // count, and require byte-identical artifacts every time.
    for (const std::size_t workers : {1u, 2u, 4u}) {
        const fs::path dir = freshDir(
            "acdse_crash_multi" + std::to_string(workers));
        RunResult result = run(
            dir, "ACDSE_JOBS_KILL_AFTER=0:1 " + jobsCmd(runArgs(workers)));
        if (workers == 1) {
            // Single worker: the kill is deterministic.
            ASSERT_EQ(result.exitCode, 3) << result.output;
        } else {
            // Worker 0 is all but certain to win a claim; tolerate
            // the race where siblings drain the queue first.
            ASSERT_TRUE(result.exitCode == 3 || result.exitCode == 0)
                << result.output;
        }
        if (result.exitCode == 3) {
            result = run(dir,
                         jobsCmd("resume --dir . --workers " +
                                 std::to_string(workers)));
            ASSERT_EQ(result.exitCode, 0)
                << workers << " workers: " << result.output;
        }
        expectArtifactsMatchReference(dir);
    }
}

TEST(CrashResume, FailedJobRetriesAndSucceeds)
{
    // A job that throws on its first attempt is retried inside the
    // same session and the run still completes with identical bytes.
    const fs::path dir = freshDir("acdse_crash_retry");
    const RunResult result =
        run(dir, "ACDSE_JOBS_FAIL_ONCE=sim0 " + jobsCmd(runArgs(1)));
    ASSERT_EQ(result.exitCode, 0) << result.output;
    expectArtifactsMatchReference(dir);

    const testjson::Value status = statusOf(dir, 0);
    for (const auto &job : status.at("states").array) {
        const int expected = job.at("id").asString() == "sim0" ? 2 : 1;
        EXPECT_EQ(job.at("attempts").asNumber(), expected)
            << job.at("id").asString();
    }
}

TEST(CrashResume, RecordedJournalSurvivesCorruptionSweep)
{
    // Satellite 2, over a *real* recorded journal (the reference
    // run's): every truncation and a 3-bit-per-byte flip sweep must
    // decode to a verified prefix of the original records or throw
    // JournalError -- silent divergence is the one forbidden outcome.
    const fs::path journalFile =
        findFile(referenceDir(), "acdse_jobs_", ".journal");
    const std::string bytes = readBytes(journalFile);
    ASSERT_GT(bytes.size(), 500u) << "journal suspiciously small";
    const auto reference = Journal::decode(bytes).records;
    ASSERT_GE(reference.size(), 20u); // plan + 9 jobs + gen + 18 state

    const auto isPrefix =
        [&reference](
            const std::vector<std::vector<std::string>> &got) {
            if (got.size() > reference.size())
                return false;
            for (std::size_t i = 0; i < got.size(); ++i) {
                if (got[i] != reference[i])
                    return false;
            }
            return true;
        };

    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
        const JournalReplay replay =
            Journal::decode(std::string_view(bytes).substr(0, cut));
        EXPECT_TRUE(isPrefix(replay.records)) << "truncation " << cut;
    }
    for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
        for (const unsigned bit : {0u, 3u, 7u}) {
            std::string flipped = bytes;
            flipped[pos] = static_cast<char>(
                static_cast<unsigned char>(flipped[pos]) ^ (1u << bit));
            try {
                EXPECT_TRUE(isPrefix(Journal::decode(flipped).records))
                    << "flip at byte " << pos << " bit " << bit;
            } catch (const JournalError &) {
                // Typed rejection: acceptable.
            }
        }
    }
}

TEST(CrashResume, TruncatedJournalResumesIdentically)
{
    // Chop whole records plus a partial line off a killed run's
    // journal -- the torn-write shape a crash can leave. Resume must
    // treat the lost suffix as never-happened work and still converge
    // to identical artifacts.
    const fs::path dir = freshDir("acdse_crash_truncate");
    RunResult result =
        run(dir, "ACDSE_JOBS_KILL_AFTER=0:4 " + jobsCmd(runArgs(1)));
    ASSERT_EQ(result.exitCode, 3) << result.output;

    const fs::path journalFile = findFile(dir, "acdse_jobs_", ".journal");
    std::string bytes = readBytes(journalFile);
    // Keep the plan, the 9 job records and the generation record (11
    // lines) plus 5 bytes of the next line to simulate the torn tail.
    std::size_t offset = 0;
    for (int line = 0; line < 11; ++line)
        offset = bytes.find('\n', offset) + 1;
    ASSERT_LT(offset + 5, bytes.size());
    {
        std::ofstream out(journalFile, // NOLINT(acdse-atomic-write)
                          std::ios::binary | std::ios::trunc);
        out << bytes.substr(0, offset + 5);
    }

    result = run(dir, jobsCmd("resume --dir . --workers 1"));
    ASSERT_EQ(result.exitCode, 0) << result.output;
    expectArtifactsMatchReference(dir);
}

TEST(CrashResume, CorruptedJournalIsATypedErrorNotAWrongResume)
{
    // Flip one interior bit of a killed run's journal: status and
    // resume must both fail with exit 1 (typed JournalError), not
    // carry on from damaged state.
    const fs::path dir = freshDir("acdse_crash_bitflip");
    RunResult result =
        run(dir, "ACDSE_JOBS_KILL_AFTER=0:4 " + jobsCmd(runArgs(1)));
    ASSERT_EQ(result.exitCode, 3) << result.output;

    const fs::path journalFile = findFile(dir, "acdse_jobs_", ".journal");
    std::string bytes = readBytes(journalFile);
    // A content byte inside the second record (the first job line).
    const std::size_t target = bytes.find('\n') + 4;
    ASSERT_LT(target, bytes.size());
    bytes[target] = static_cast<char>(
        static_cast<unsigned char>(bytes[target]) ^ 0x01u);
    {
        std::ofstream out(journalFile, // NOLINT(acdse-atomic-write)
                          std::ios::binary | std::ios::trunc);
        out << bytes;
    }

    result = run(dir, jobsCmd("status --dir ."));
    EXPECT_EQ(result.exitCode, 1) << result.output;
    EXPECT_NE(result.output.find("error"), std::string::npos);
    result = run(dir, jobsCmd("resume --dir . --workers 1"));
    EXPECT_EQ(result.exitCode, 1) << result.output;
}

} // namespace
} // namespace acdse
