/**
 * @file
 * Unit tests for k-means clustering (SimPoint's workhorse).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "base/rng.hh"
#include "ml/kmeans.hh"

namespace acdse
{
namespace
{

std::vector<std::vector<double>>
blobs(const std::vector<std::vector<double>> &centers, int per_blob,
      std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::vector<double>> points;
    for (const auto &center : centers) {
        for (int i = 0; i < per_blob; ++i) {
            std::vector<double> p = center;
            for (double &v : p)
                v += 0.1 * rng.nextGaussian();
            points.push_back(std::move(p));
        }
    }
    return points;
}

TEST(Kmeans, RecoversSeparatedBlobs)
{
    const auto points =
        blobs({{0.0, 0.0}, {10.0, 0.0}, {0.0, 10.0}}, 40, 1);
    const KmeansResult result = kmeans(points, 3, 42);
    // All points of a blob share one cluster id.
    for (int blob = 0; blob < 3; ++blob) {
        const std::size_t expected = result.assignment[blob * 40];
        for (int i = 0; i < 40; ++i)
            EXPECT_EQ(result.assignment[blob * 40 + i], expected);
    }
    // And the three blobs get three distinct ids.
    EXPECT_NE(result.assignment[0], result.assignment[40]);
    EXPECT_NE(result.assignment[40], result.assignment[80]);
}

TEST(Kmeans, InertiaDecreasesWithK)
{
    const auto points = blobs({{0, 0}, {5, 5}, {10, 0}, {0, 10}}, 30, 2);
    double prev = 1e300;
    for (std::size_t k : {1u, 2u, 4u}) {
        const KmeansResult result = kmeans(points, k, 7);
        EXPECT_LE(result.inertia, prev + 1e-9) << "k=" << k;
        prev = result.inertia;
    }
}

TEST(Kmeans, KClampedToPointCount)
{
    const std::vector<std::vector<double>> points{{1.0}, {2.0}};
    const KmeansResult result = kmeans(points, 10, 3);
    EXPECT_EQ(result.centroids.size(), 2u);
}

TEST(Kmeans, SinglePoint)
{
    const std::vector<std::vector<double>> points{{3.0, 4.0}};
    const KmeansResult result = kmeans(points, 1, 5);
    EXPECT_EQ(result.assignment[0], 0u);
    EXPECT_DOUBLE_EQ(result.inertia, 0.0);
}

TEST(Kmeans, DeterministicForFixedSeed)
{
    const auto points = blobs({{0, 0}, {8, 8}}, 50, 9);
    const KmeansResult a = kmeans(points, 2, 11);
    const KmeansResult b = kmeans(points, 2, 11);
    EXPECT_EQ(a.assignment, b.assignment);
    EXPECT_DOUBLE_EQ(a.inertia, b.inertia);
}

TEST(Kmeans, CentroidsNearBlobMeans)
{
    const auto points = blobs({{0.0, 0.0}, {10.0, 10.0}}, 100, 13);
    const KmeansResult result = kmeans(points, 2, 17);
    // One centroid near each blob center.
    bool near_origin = false, near_far = false;
    for (const auto &c : result.centroids) {
        if (std::abs(c[0]) < 0.5 && std::abs(c[1]) < 0.5)
            near_origin = true;
        if (std::abs(c[0] - 10.0) < 0.5 && std::abs(c[1] - 10.0) < 0.5)
            near_far = true;
    }
    EXPECT_TRUE(near_origin);
    EXPECT_TRUE(near_far);
}

TEST(KmeansDeathTest, EmptyInput)
{
    std::vector<std::vector<double>> empty;
    EXPECT_DEATH(kmeans(empty, 2, 1), "no points");
}

} // namespace
} // namespace acdse
