/**
 * @file
 * Unit tests for ridge-regularised linear least squares (the response
 * regressor of the architecture-centric model, paper eq. (3)-(5)).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "base/rng.hh"
#include "ml/linear_regression.hh"

namespace acdse
{
namespace
{

TEST(LinearRegression, RecoversExactLinearModel)
{
    // y = 2 + 3a - b, no noise -> exact recovery.
    std::vector<std::vector<double>> xs;
    std::vector<double> ys;
    Rng rng(1);
    for (int i = 0; i < 40; ++i) {
        const double a = rng.nextDouble(-5, 5);
        const double b = rng.nextDouble(-5, 5);
        xs.push_back({a, b});
        ys.push_back(2.0 + 3.0 * a - b);
    }
    LinearRegression model;
    model.fit(xs, ys, /*ridge=*/0.0);
    EXPECT_NEAR(model.intercept(), 2.0, 1e-9);
    EXPECT_NEAR(model.weights()[0], 3.0, 1e-9);
    EXPECT_NEAR(model.weights()[1], -1.0, 1e-9);
    EXPECT_NEAR(model.predict({1.0, 1.0}), 4.0, 1e-9);
}

TEST(LinearRegression, PaperFigure8Example)
{
    // The paper's Fig. 8 line: y = 0.59 + 0.21 x (their five-point
    // example rounded to two decimals). We check the regression machinery
    // on a comparable tiny problem.
    const std::vector<std::vector<double>> xs{{1}, {2}, {3}, {4}, {5}};
    const std::vector<double> ys{0.8, 1.0, 1.2, 1.4, 1.6};
    LinearRegression model;
    model.fit(xs, ys, 0.0);
    EXPECT_NEAR(model.intercept(), 0.6, 1e-9);
    EXPECT_NEAR(model.weights()[0], 0.2, 1e-9);
}

TEST(LinearRegression, WithoutInterceptGoesThroughOrigin)
{
    const std::vector<std::vector<double>> xs{{1}, {2}, {4}};
    const std::vector<double> ys{2, 4, 8};
    LinearRegression model;
    model.fit(xs, ys, 0.0, /*intercept=*/false);
    EXPECT_DOUBLE_EQ(model.intercept(), 0.0);
    EXPECT_NEAR(model.weights()[0], 2.0, 1e-9);
}

TEST(LinearRegression, RidgeShrinksWeights)
{
    Rng rng(7);
    std::vector<std::vector<double>> xs;
    std::vector<double> ys;
    for (int i = 0; i < 30; ++i) {
        const double a = rng.nextGaussian();
        xs.push_back({a});
        ys.push_back(5.0 * a + 0.1 * rng.nextGaussian());
    }
    LinearRegression plain, shrunk;
    plain.fit(xs, ys, 0.0);
    shrunk.fit(xs, ys, 1.0);
    EXPECT_LT(std::abs(shrunk.weights()[0]),
              std::abs(plain.weights()[0]));
}

TEST(LinearRegression, HandlesCollinearFeatures)
{
    // Second feature is an exact copy: rank-deficient without ridge.
    std::vector<std::vector<double>> xs;
    std::vector<double> ys;
    Rng rng(11);
    for (int i = 0; i < 25; ++i) {
        const double a = rng.nextDouble(-1, 1);
        xs.push_back({a, a});
        ys.push_back(4.0 * a);
    }
    LinearRegression model;
    model.fit(xs, ys, 1e-8);
    ASSERT_TRUE(model.fitted());
    // Whatever the weight split, predictions must be right.
    EXPECT_NEAR(model.predict({0.5, 0.5}), 2.0, 1e-3);
}

TEST(LinearRegression, MoreFeaturesThanSamplesStillSolves)
{
    // The architecture-centric regime: 25 features, sometimes fewer
    // responses than that.
    Rng rng(13);
    std::vector<std::vector<double>> xs;
    std::vector<double> ys;
    for (int i = 0; i < 10; ++i) {
        std::vector<double> x(25);
        for (auto &v : x)
            v = rng.nextGaussian();
        ys.push_back(x[0] + 0.5 * x[1]);
        xs.push_back(std::move(x));
    }
    LinearRegression model;
    model.fit(xs, ys, 1e-3);
    ASSERT_TRUE(model.fitted());
    for (std::size_t i = 0; i < xs.size(); ++i)
        EXPECT_NEAR(model.predict(xs[i]), ys[i], 0.5);
}

TEST(LinearRegression, NoisyFitBeatsMeanBaseline)
{
    Rng rng(17);
    std::vector<std::vector<double>> xs;
    std::vector<double> ys;
    for (int i = 0; i < 200; ++i) {
        const double a = rng.nextDouble(0, 10);
        xs.push_back({a});
        ys.push_back(3.0 * a + rng.nextGaussian());
    }
    LinearRegression model;
    model.fit(xs, ys, 1e-6);
    double sse_model = 0.0, sse_mean = 0.0;
    const double mean = [&] {
        double total = 0.0;
        for (double y : ys)
            total += y;
        return total / static_cast<double>(ys.size());
    }();
    for (std::size_t i = 0; i < xs.size(); ++i) {
        sse_model += std::pow(model.predict(xs[i]) - ys[i], 2);
        sse_mean += std::pow(mean - ys[i], 2);
    }
    EXPECT_LT(sse_model, 0.05 * sse_mean);
}

TEST(LinearRegressionDeathTest, PredictBeforeFit)
{
    LinearRegression model;
    EXPECT_DEATH(model.predict({1.0}), "before fit");
}

} // namespace
} // namespace acdse
