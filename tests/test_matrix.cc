/**
 * @file
 * Unit tests for the dense matrix helpers.
 */

#include <gtest/gtest.h>

#include "base/rng.hh"
#include "ml/matrix.hh"

namespace acdse
{
namespace
{

TEST(Matrix, MultiplyKnownValues)
{
    Matrix a(2, 3), b(3, 2);
    int v = 1;
    for (std::size_t i = 0; i < 2; ++i)
        for (std::size_t j = 0; j < 3; ++j)
            a(i, j) = v++;
    v = 1;
    for (std::size_t i = 0; i < 3; ++i)
        for (std::size_t j = 0; j < 2; ++j)
            b(i, j) = v++;
    const Matrix c = a.multiply(b);
    // [[1,2,3],[4,5,6]] * [[1,2],[3,4],[5,6]] = [[22,28],[49,64]]
    EXPECT_DOUBLE_EQ(c(0, 0), 22.0);
    EXPECT_DOUBLE_EQ(c(0, 1), 28.0);
    EXPECT_DOUBLE_EQ(c(1, 0), 49.0);
    EXPECT_DOUBLE_EQ(c(1, 1), 64.0);
}

TEST(Matrix, TransposeRoundTrip)
{
    Rng rng(1);
    Matrix a(4, 7);
    for (std::size_t i = 0; i < 4; ++i)
        for (std::size_t j = 0; j < 7; ++j)
            a(i, j) = rng.nextGaussian();
    const Matrix att = a.transposed().transposed();
    for (std::size_t i = 0; i < 4; ++i)
        for (std::size_t j = 0; j < 7; ++j)
            EXPECT_DOUBLE_EQ(att(i, j), a(i, j));
}

TEST(Matrix, GramMatchesExplicitProduct)
{
    Rng rng(2);
    Matrix a(6, 4);
    for (std::size_t i = 0; i < 6; ++i)
        for (std::size_t j = 0; j < 4; ++j)
            a(i, j) = rng.nextGaussian();
    const Matrix fast = a.gram();
    const Matrix slow = a.transposed().multiply(a);
    for (std::size_t i = 0; i < 4; ++i)
        for (std::size_t j = 0; j < 4; ++j)
            EXPECT_NEAR(fast(i, j), slow(i, j), 1e-12);
}

TEST(Matrix, VectorProducts)
{
    Matrix a(2, 2);
    a(0, 0) = 1;
    a(0, 1) = 2;
    a(1, 0) = 3;
    a(1, 1) = 4;
    const auto ax = a.times({1.0, 1.0});
    EXPECT_DOUBLE_EQ(ax[0], 3.0);
    EXPECT_DOUBLE_EQ(ax[1], 7.0);
    const auto aty = a.transposeTimes({1.0, 1.0});
    EXPECT_DOUBLE_EQ(aty[0], 4.0);
    EXPECT_DOUBLE_EQ(aty[1], 6.0);
}

TEST(Matrix, CholeskySolvesSpdSystem)
{
    // A = [[4,2],[2,3]], b = [10, 9] -> x = [1.5, 2].
    Matrix a(2, 2);
    a(0, 0) = 4;
    a(0, 1) = 2;
    a(1, 0) = 2;
    a(1, 1) = 3;
    std::vector<double> x;
    ASSERT_TRUE(a.choleskySolve({10.0, 9.0}, x));
    EXPECT_NEAR(x[0], 1.5, 1e-12);
    EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Matrix, CholeskyRandomSpdRoundTrip)
{
    Rng rng(3);
    const std::size_t n = 12;
    Matrix basis(n, n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            basis(i, j) = rng.nextGaussian();
    Matrix spd = basis.gram(); // basis^T basis is SPD (full rank w.h.p.)
    for (std::size_t i = 0; i < n; ++i)
        spd(i, i) += 1.0;

    std::vector<double> truth(n);
    for (auto &t : truth)
        t = rng.nextDouble(-2.0, 2.0);
    const std::vector<double> b = spd.times(truth);
    std::vector<double> solved;
    ASSERT_TRUE(spd.choleskySolve(b, solved));
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_NEAR(solved[i], truth[i], 1e-8);
}

TEST(Matrix, CholeskyRejectsIndefinite)
{
    Matrix a(2, 2);
    a(0, 0) = 1;
    a(0, 1) = 2;
    a(1, 0) = 2;
    a(1, 1) = 1; // eigenvalues 3 and -1
    std::vector<double> x;
    EXPECT_FALSE(a.choleskySolve({1.0, 1.0}, x));
}

TEST(Matrix, Identity)
{
    const Matrix eye = Matrix::identity(3);
    for (std::size_t i = 0; i < 3; ++i)
        for (std::size_t j = 0; j < 3; ++j)
            EXPECT_DOUBLE_EQ(eye(i, j), i == j ? 1.0 : 0.0);
}

} // namespace
} // namespace acdse
