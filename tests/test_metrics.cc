/**
 * @file
 * Unit tests for the cycles/energy/ED/EDD metric bundle.
 */

#include <gtest/gtest.h>

#include "sim/metrics.hh"

namespace acdse
{
namespace
{

TEST(Metrics, ProductsFromCyclesAndEnergy)
{
    const Metrics m = Metrics::fromCyclesEnergy(100.0, 5.0);
    EXPECT_DOUBLE_EQ(m.cycles, 100.0);
    EXPECT_DOUBLE_EQ(m.energyNj, 5.0);
    EXPECT_DOUBLE_EQ(m.ed, 500.0);
    EXPECT_DOUBLE_EQ(m.edd, 50000.0);
}

TEST(Metrics, GetMatchesFields)
{
    const Metrics m = Metrics::fromCyclesEnergy(7.0, 3.0);
    EXPECT_DOUBLE_EQ(m.get(Metric::Cycles), m.cycles);
    EXPECT_DOUBLE_EQ(m.get(Metric::Energy), m.energyNj);
    EXPECT_DOUBLE_EQ(m.get(Metric::Ed), m.ed);
    EXPECT_DOUBLE_EQ(m.get(Metric::Edd), m.edd);
}

TEST(Metrics, ScalingIsLinearInInstructions)
{
    // 16k instructions -> 10M instructions: cycles and energy scale by
    // 625, ED by 625^2, EDD by 625^3.
    const Metrics m = Metrics::fromCyclesEnergy(32000.0, 16000.0);
    const Metrics scaled = m.scaledToInstructions(16000.0, 10e6);
    const double f = 625.0;
    EXPECT_DOUBLE_EQ(scaled.cycles, 32000.0 * f);
    EXPECT_DOUBLE_EQ(scaled.energyNj, 16000.0 * f);
    EXPECT_DOUBLE_EQ(scaled.ed, 32000.0 * 16000.0 * f * f);
    EXPECT_DOUBLE_EQ(scaled.edd,
                     16000.0 * 32000.0 * 32000.0 * f * f * f);
}

TEST(Metrics, ScalingIdentity)
{
    const Metrics m = Metrics::fromCyclesEnergy(123.0, 456.0);
    const Metrics same = m.scaledToInstructions(1000.0, 1000.0);
    EXPECT_DOUBLE_EQ(same.cycles, m.cycles);
    EXPECT_DOUBLE_EQ(same.edd, m.edd);
}

TEST(Metrics, NamesAndEnumeration)
{
    EXPECT_STREQ(metricName(Metric::Cycles), "cycles");
    EXPECT_STREQ(metricName(Metric::Energy), "energy");
    EXPECT_STREQ(metricName(Metric::Ed), "ED");
    EXPECT_STREQ(metricName(Metric::Edd), "EDD");
    EXPECT_EQ(kAllMetrics.size(), 4u);
}

/** Lower is better for every metric: ED/EDD inherit monotonicity. */
TEST(Metrics, FasterSameEnergyImprovesProducts)
{
    const Metrics slow = Metrics::fromCyclesEnergy(200.0, 10.0);
    const Metrics fast = Metrics::fromCyclesEnergy(100.0, 10.0);
    EXPECT_LT(fast.ed, slow.ed);
    EXPECT_LT(fast.edd, slow.edd);
}

TEST(Metrics, EddEmphasisesPerformanceOverEnergy)
{
    // Config A: half the delay, double the energy of config B. ED ties;
    // EDD must prefer the faster one (paper Section 3.2).
    const Metrics a = Metrics::fromCyclesEnergy(100.0, 20.0);
    const Metrics b = Metrics::fromCyclesEnergy(200.0, 10.0);
    EXPECT_DOUBLE_EQ(a.ed, b.ed);
    EXPECT_LT(a.edd, b.edd);
}

} // namespace
} // namespace acdse
