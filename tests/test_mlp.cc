/**
 * @file
 * Unit tests for the multilayer perceptron (paper Section 5.2.1).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "base/rng.hh"
#include "ml/mlp.hh"

namespace acdse
{
namespace
{

TEST(Mlp, FitsLinearFunction)
{
    Rng rng(1);
    std::vector<std::vector<double>> xs;
    std::vector<double> ys;
    for (int i = 0; i < 200; ++i) {
        const double a = rng.nextDouble(-2, 2);
        const double b = rng.nextDouble(-2, 2);
        xs.push_back({a, b});
        ys.push_back(3.0 * a - 2.0 * b + 1.0);
    }
    Mlp mlp;
    mlp.train(xs, ys);
    double max_err = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        max_err = std::max(max_err,
                           std::abs(mlp.predict(xs[i]) - ys[i]));
    }
    EXPECT_LT(max_err, 0.6);
}

TEST(Mlp, FitsSmoothNonlinearFunction)
{
    Rng rng(2);
    std::vector<std::vector<double>> xs;
    std::vector<double> ys;
    for (int i = 0; i < 400; ++i) {
        const double a = rng.nextDouble(-1.5, 1.5);
        xs.push_back({a});
        ys.push_back(std::sin(2.0 * a) + 0.5 * a * a);
    }
    MlpOptions options;
    options.epochs = 600;
    Mlp mlp(options);
    mlp.train(xs, ys);
    double sse = 0.0, var = 0.0;
    double mean = 0.0;
    for (double y : ys)
        mean += y;
    mean /= static_cast<double>(ys.size());
    for (std::size_t i = 0; i < xs.size(); ++i) {
        sse += std::pow(mlp.predict(xs[i]) - ys[i], 2);
        var += std::pow(ys[i] - mean, 2);
    }
    EXPECT_LT(sse / var, 0.05); // explains > 95% of the variance
}

TEST(Mlp, InterpolatesUnseenPoints)
{
    Rng rng(3);
    std::vector<std::vector<double>> xs;
    std::vector<double> ys;
    for (int i = 0; i < 300; ++i) {
        const double a = rng.nextDouble(0, 1);
        const double b = rng.nextDouble(0, 1);
        xs.push_back({a, b});
        ys.push_back(a * b + a);
    }
    Mlp mlp;
    mlp.train(xs, ys);
    // Held-out grid points.
    double max_err = 0.0;
    for (double a : {0.25, 0.5, 0.75}) {
        for (double b : {0.25, 0.5, 0.75}) {
            max_err = std::max(
                max_err, std::abs(mlp.predict({a, b}) - (a * b + a)));
        }
    }
    EXPECT_LT(max_err, 0.15);
}

TEST(Mlp, DeterministicForFixedSeed)
{
    Rng rng(4);
    std::vector<std::vector<double>> xs;
    std::vector<double> ys;
    for (int i = 0; i < 50; ++i) {
        xs.push_back({rng.nextDouble(0, 1)});
        ys.push_back(xs.back()[0] * 2.0);
    }
    Mlp a, b;
    a.train(xs, ys);
    b.train(xs, ys);
    for (double probe : {0.1, 0.4, 0.9})
        EXPECT_DOUBLE_EQ(a.predict({probe}), b.predict({probe}));
}

TEST(Mlp, DifferentSeedsDifferentNetworks)
{
    Rng rng(5);
    std::vector<std::vector<double>> xs;
    std::vector<double> ys;
    for (int i = 0; i < 50; ++i) {
        xs.push_back({rng.nextDouble(0, 1)});
        ys.push_back(std::sin(xs.back()[0] * 6.0));
    }
    MlpOptions oa, ob;
    oa.seed = 1;
    ob.seed = 2;
    Mlp a(oa), b(ob);
    a.train(xs, ys);
    b.train(xs, ys);
    EXPECT_NE(a.predict({0.37}), b.predict({0.37}));
}

TEST(Mlp, HandlesWideTargetScale)
{
    // Targets in the 1e7 range (cycles-like): the internal target
    // scaler must cope.
    Rng rng(6);
    std::vector<std::vector<double>> xs;
    std::vector<double> ys;
    for (int i = 0; i < 200; ++i) {
        const double a = rng.nextDouble(0, 1);
        xs.push_back({a});
        ys.push_back(1e7 * (1.0 + a));
    }
    Mlp mlp;
    mlp.train(xs, ys);
    EXPECT_NEAR(mlp.predict({0.5}), 1.5e7, 0.1e7);
}

TEST(Mlp, PaperArchitectureDefaults)
{
    // "a multilayer perceptron with one hidden layer of 10 neurons"
    // (Section 5.2).
    const Mlp mlp;
    EXPECT_EQ(mlp.options().hiddenNeurons, 10);
}

TEST(MlpDeathTest, PredictBeforeTrain)
{
    Mlp mlp;
    EXPECT_DEATH(mlp.predict({1.0}), "before train");
}

TEST(MlpDeathTest, MismatchedSizes)
{
    Mlp mlp;
    std::vector<std::vector<double>> xs{{1.0}};
    std::vector<double> ys{1.0, 2.0};
    EXPECT_DEATH(mlp.train(xs, ys), "mismatch");
}

} // namespace
} // namespace acdse
