/**
 * @file
 * Unit tests for model persistence: exact round trips of every
 * serialisable model class, and rejection of malformed artifacts
 * (bad magic, wrong version, corrupted checksum, truncation).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "arch/design_space.hh"
#include "base/binary_io.hh"
#include "ml/linear_regression.hh"
#include "ml/mlp.hh"
#include "ml/scaler.hh"
#include "serve/model_store.hh"

namespace acdse
{
namespace
{

/** A smooth positive synthetic target over the design space. */
double
synthetic(const MicroarchConfig &config, double wide, double mem)
{
    return 500.0 + wide * 4000.0 / config.width() +
           mem * 60000.0 /
               std::sqrt(static_cast<double>(config.l2Bytes() / 1024));
}

std::vector<MicroarchConfig>
configs(std::size_t n, std::uint64_t seed)
{
    return DesignSpace::sampleValidConfigs(n, seed);
}

/** Offline-train + response-fit a small predictor on synthetic data. */
ArchitectureCentricPredictor
trainedPredictor(bool fit_responses = true)
{
    const auto train = configs(64, 1);
    std::vector<ProgramTrainingSet> sets(3);
    for (int j = 0; j < 3; ++j) {
        sets[j].name = "p" + std::to_string(j);
        sets[j].configs = train;
        for (const auto &c : train)
            sets[j].values.push_back(synthetic(c, 1.0 + j, 2.0 - 0.5 * j));
    }
    ArchitectureCentricPredictor predictor;
    predictor.trainOffline(sets);
    if (fit_responses) {
        const auto rc = configs(16, 2);
        std::vector<double> responses;
        for (const auto &c : rc)
            responses.push_back(synthetic(c, 1.5, 1.0));
        predictor.fitResponses(rc, responses);
    }
    return predictor;
}

std::string
tempPath(const std::string &name)
{
    return (std::filesystem::temp_directory_path() / name).string();
}

TEST(BinaryIo, ScalarRoundTrip)
{
    BinaryWriter w;
    w.u8(0xab);
    w.u32(0xdeadbeef);
    w.u64(0x0123456789abcdefull);
    w.f64(-1.5e-300);
    w.str("hello");
    w.f64vec({1.0, -0.0, 2.5});

    BinaryReader r(w.buffer());
    EXPECT_EQ(r.u8(), 0xab);
    EXPECT_EQ(r.u32(), 0xdeadbeefu);
    EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
    EXPECT_EQ(r.f64(), -1.5e-300);
    EXPECT_EQ(r.str(), "hello");
    EXPECT_EQ(r.f64vec(), (std::vector<double>{1.0, -0.0, 2.5}));
    EXPECT_TRUE(r.exhausted());
}

TEST(BinaryIo, UnderflowThrows)
{
    BinaryWriter w;
    w.u32(7);
    BinaryReader r(w.buffer());
    EXPECT_THROW(r.u64(), SerializationError);
}

TEST(ModelStore, ScalerRoundTripIsExact)
{
    StandardScaler scaler;
    scaler.fit({{1.0, 2.0, 3.0}, {4.0, -5.0, 6.5}, {0.1, 0.2, 0.3}});
    BinaryWriter w;
    scaler.save(w);
    StandardScaler loaded;
    BinaryReader r(w.buffer());
    loaded.load(r);
    const std::vector<double> probe{3.7, -1.2, 9.9};
    EXPECT_EQ(loaded.transform(probe), scaler.transform(probe));

    TargetScaler target;
    target.fit({10.0, 20.0, 35.0});
    BinaryWriter tw;
    target.save(tw);
    TargetScaler target_loaded;
    BinaryReader tr(tw.buffer());
    target_loaded.load(tr);
    EXPECT_EQ(target_loaded.scale(17.0), target.scale(17.0));
    EXPECT_EQ(target_loaded.unscale(0.3), target.unscale(0.3));
}

TEST(ModelStore, MlpRoundTripIsBitwiseExact)
{
    const auto train = configs(48, 3);
    std::vector<std::vector<double>> xs;
    std::vector<double> ys;
    for (const auto &c : train) {
        xs.push_back(c.asFeatureVector());
        ys.push_back(synthetic(c, 1.0, 1.0));
    }
    Mlp mlp;
    mlp.train(xs, ys);

    BinaryWriter w;
    mlp.save(w);
    Mlp loaded;
    BinaryReader r(w.buffer());
    loaded.load(r);
    EXPECT_TRUE(r.exhausted());
    EXPECT_TRUE(loaded.trained());
    EXPECT_EQ(loaded.options().hiddenNeurons,
              mlp.options().hiddenNeurons);
    for (const auto &c : configs(32, 4)) {
        const auto x = c.asFeatureVector();
        EXPECT_EQ(loaded.predict(x), mlp.predict(x));
    }
}

TEST(ModelStore, LinearRegressionRoundTripIsExact)
{
    LinearRegression regression;
    regression.fit({{1.0, 2.0}, {2.0, 1.0}, {3.0, 5.0}, {0.5, 0.5}},
                   {3.0, 4.0, 11.0, 1.5});
    BinaryWriter w;
    regression.save(w);
    LinearRegression loaded;
    BinaryReader r(w.buffer());
    loaded.load(r);
    EXPECT_TRUE(loaded.fitted());
    EXPECT_EQ(loaded.weights(), regression.weights());
    EXPECT_EQ(loaded.intercept(), regression.intercept());
    EXPECT_EQ(loaded.predict({2.2, 3.3}), regression.predict({2.2, 3.3}));
}

TEST(ModelStore, PredictorRoundTripIsBitwiseExact)
{
    const ArchitectureCentricPredictor predictor = trainedPredictor();
    BinaryWriter w;
    predictor.save(w);
    ArchitectureCentricPredictor loaded;
    BinaryReader r(w.buffer());
    loaded.load(r);
    EXPECT_TRUE(loaded.ready());
    EXPECT_EQ(loaded.trainingPrograms(), predictor.trainingPrograms());
    EXPECT_EQ(loaded.weights(), predictor.weights());
    for (const auto &c : configs(64, 5))
        EXPECT_EQ(loaded.predict(c), predictor.predict(c));
}

TEST(ModelStore, OfflineOnlyPredictorCanFitResponsesAfterLoad)
{
    const ArchitectureCentricPredictor predictor =
        trainedPredictor(/*fit_responses=*/false);
    BinaryWriter w;
    predictor.save(w);
    ArchitectureCentricPredictor loaded;
    BinaryReader r(w.buffer());
    loaded.load(r);
    EXPECT_TRUE(loaded.offlineTrained());
    EXPECT_FALSE(loaded.ready());

    const auto rc = configs(12, 6);
    std::vector<double> responses;
    for (const auto &c : rc)
        responses.push_back(synthetic(c, 2.0, 0.5));
    loaded.fitResponses(rc, responses);
    EXPECT_TRUE(loaded.ready());
}

TEST(ModelStore, ArtifactFileRoundTrip)
{
    ModelArtifact artifact;
    artifact.setTag("unit test artifact");
    artifact.add(Metric::Cycles, trainedPredictor());
    artifact.add(Metric::Energy, trainedPredictor());

    const std::string path = tempPath("acdse_store_roundtrip.acdse");
    saveArtifact(path, artifact);
    const ModelArtifact loaded = loadArtifact(path);
    std::remove(path.c_str());

    EXPECT_EQ(loaded.tag(), "unit test artifact");
    EXPECT_EQ(loaded.metrics(),
              (std::vector<Metric>{Metric::Cycles, Metric::Energy}));
    EXPECT_FALSE(loaded.has(Metric::Ed));
    for (const auto &c : configs(32, 7)) {
        EXPECT_EQ(loaded.predictor(Metric::Cycles).predict(c),
                  artifact.predictor(Metric::Cycles).predict(c));
        EXPECT_EQ(loaded.predictor(Metric::Energy).predict(c),
                  artifact.predictor(Metric::Energy).predict(c));
    }
}

TEST(ModelStore, RejectsBadMagic)
{
    ModelArtifact artifact;
    artifact.add(Metric::Cycles, trainedPredictor());
    std::string bytes = encodeArtifact(artifact);
    bytes[0] = 'X';
    EXPECT_THROW(decodeArtifact(bytes), SerializationError);
}

TEST(ModelStore, RejectsWrongVersion)
{
    ModelArtifact artifact;
    artifact.add(Metric::Cycles, trainedPredictor());
    std::string bytes = encodeArtifact(artifact);
    bytes[8] = static_cast<char>(kArtifactVersion + 1); // version field
    try {
        decodeArtifact(bytes);
        FAIL() << "wrong version must be rejected";
    } catch (const SerializationError &err) {
        EXPECT_NE(std::string(err.what()).find("version"),
                  std::string::npos);
    }
}

TEST(ModelStore, RejectsCorruptedChecksum)
{
    ModelArtifact artifact;
    artifact.add(Metric::Cycles, trainedPredictor());
    std::string bytes = encodeArtifact(artifact);
    // Flip a payload byte well past the header.
    bytes[bytes.size() / 2] ^= 0x40;
    try {
        decodeArtifact(bytes);
        FAIL() << "checksum mismatch must be rejected";
    } catch (const SerializationError &err) {
        EXPECT_NE(std::string(err.what()).find("checksum"),
                  std::string::npos);
    }
}

TEST(ModelStore, RejectsTruncatedFile)
{
    ModelArtifact artifact;
    artifact.add(Metric::Cycles, trainedPredictor());
    const std::string bytes = encodeArtifact(artifact);
    EXPECT_THROW(decodeArtifact(bytes.substr(0, bytes.size() - 10)),
                 SerializationError);
    EXPECT_THROW(decodeArtifact(bytes.substr(0, 10)),
                 SerializationError);
    EXPECT_THROW(decodeArtifact(""), SerializationError);
}

TEST(ModelStore, LoadMissingFileThrows)
{
    EXPECT_THROW(loadArtifact(tempPath("acdse_no_such_file.acdse")),
                 SerializationError);
}

TEST(ModelStore, SaveIsAtomicUnderExistingFile)
{
    // Saving over an existing artifact must never expose a torn file:
    // after save, the file always decodes.
    ModelArtifact artifact;
    artifact.setTag("first");
    artifact.add(Metric::Cycles, trainedPredictor());
    const std::string path = tempPath("acdse_store_atomic.acdse");
    saveArtifact(path, artifact);
    artifact.setTag("second");
    saveArtifact(path, artifact);
    EXPECT_EQ(loadArtifact(path).tag(), "second");
    std::remove(path.c_str());
}

TEST(ModelStore, EveryTruncationIsRejectedCleanly)
{
    // A serving process must reject a partially-written or
    // partially-copied artifact with SerializationError at *every*
    // possible cut point -- no crash, no garbage model.
    ModelArtifact artifact;
    artifact.setTag("truncation-fuzz");
    artifact.add(Metric::Cycles, trainedPredictor());
    const std::string bytes = encodeArtifact(artifact);
    ASSERT_GT(bytes.size(), 28u);
    for (std::size_t len = 0; len < bytes.size(); ++len) {
        EXPECT_THROW(decodeArtifact(std::string_view(bytes).substr(0, len)),
                     SerializationError)
            << "truncation to " << len << " bytes was accepted";
    }
    // Trailing garbage is corruption too, not padding.
    EXPECT_THROW(decodeArtifact(bytes + '\0'), SerializationError);
}

TEST(ModelStore, EveryBitFlipIsRejectedCleanly)
{
    // Single-bit rot anywhere in the file -- magic, version, length,
    // checksum or payload -- must surface as SerializationError. The
    // sanitizer CI jobs run this to prove the decode path has no
    // UB/overflow on adversarial input.
    ModelArtifact artifact;
    artifact.setTag("bitflip-fuzz");
    artifact.add(Metric::Cycles, trainedPredictor());
    const std::string bytes = encodeArtifact(artifact);
    for (std::size_t offset = 0; offset < bytes.size(); ++offset) {
        for (unsigned bit : {0u, 3u, 7u}) {
            std::string corrupt = bytes;
            corrupt[offset] =
                static_cast<char>(static_cast<unsigned char>(
                                      corrupt[offset]) ^
                                  (1u << bit));
            EXPECT_THROW(decodeArtifact(corrupt), SerializationError)
                << "bit " << bit << " flip at offset " << offset
                << " was accepted";
        }
    }
}

} // namespace
} // namespace acdse
