/**
 * @file
 * Unit tests for the versioned model registry (serve/model_table.hh):
 * snapshot isolation under publish, registry-global version
 * monotonicity, tenant registration semantics and epoch-based
 * (shared_ptr) retirement of superseded models.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "arch/design_space.hh"
#include "serve/model_table.hh"

namespace acdse
{
namespace
{

ArchitectureCentricPredictor
fittedPredictor(double scale)
{
    const auto train = DesignSpace::sampleValidConfigs(48, 11);
    std::vector<ProgramTrainingSet> sets(2);
    for (int j = 0; j < 2; ++j) {
        sets[j].name = "p" + std::to_string(j);
        sets[j].configs = train;
        for (const auto &c : train)
            sets[j].values.push_back(scale *
                                     (1000.0 + 10.0 * c.width()));
    }
    ArchitectureCentricPredictor predictor;
    predictor.trainOffline(sets);
    const auto rc = DesignSpace::sampleValidConfigs(12, 12);
    std::vector<double> responses;
    for (const auto &c : rc)
        responses.push_back(scale * (1000.0 + 10.0 * c.width()));
    predictor.fitResponses(rc, responses);
    return predictor;
}

ModelArtifact
taggedArtifact(const std::string &tag, double scale = 1.0)
{
    ModelArtifact artifact;
    artifact.setTag(tag);
    artifact.add(Metric::Cycles, fittedPredictor(scale));
    return artifact;
}

TEST(ModelTable, StartsEmptyWithNoTenants)
{
    ModelRegistry registry;
    const auto table = registry.table();
    ASSERT_NE(table, nullptr);
    EXPECT_EQ(table->tenantCount(), 0u);
    EXPECT_EQ(table->modelFor(0), nullptr);
    EXPECT_EQ(registry.currentVersion(), 0u);
}

TEST(ModelTable, RegisterTenantIsIdempotentByName)
{
    ModelRegistry registry;
    const TenantId a = registry.registerTenant("alpha");
    const TenantId b = registry.registerTenant("beta");
    EXPECT_EQ(a, 0u);
    EXPECT_EQ(b, 1u);
    EXPECT_EQ(registry.registerTenant("alpha"), a);
    EXPECT_EQ(registry.findTenant("beta"), b);
    EXPECT_EQ(registry.findTenant("gamma"),
              ModelRegistry::kInvalidTenant);
    const std::vector<std::string> names = registry.tenantNames();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "alpha");
    EXPECT_EQ(names[1], "beta");
    // Registration alone grows the table; no model yet.
    EXPECT_EQ(registry.table()->tenantCount(), 2u);
    EXPECT_EQ(registry.table()->modelFor(b), nullptr);
}

TEST(ModelTable, VersionsAreRegistryGlobalAndMonotonic)
{
    ModelRegistry registry;
    const TenantId a = registry.registerTenant("alpha");
    const TenantId b = registry.registerTenant("beta");
    EXPECT_EQ(registry.publish(a, taggedArtifact("a1")), 1u);
    EXPECT_EQ(registry.publish(b, taggedArtifact("b1")), 2u);
    EXPECT_EQ(registry.publish(a, taggedArtifact("a2")), 3u);
    EXPECT_EQ(registry.currentVersion(), 3u);

    const auto table = registry.table();
    ASSERT_NE(table->modelFor(a), nullptr);
    EXPECT_EQ(table->modelFor(a)->version, 3u);
    EXPECT_EQ(table->modelFor(a)->artifact.tag(), "a2");
    EXPECT_EQ(table->modelFor(b)->version, 2u);
    EXPECT_EQ(table->modelFor(b)->artifact.tag(), "b1");
}

TEST(ModelTable, SnapshotsAreIsolatedFromLaterPublishes)
{
    ModelRegistry registry;
    const TenantId tenant = registry.registerTenant("alpha");
    registry.publish(tenant, taggedArtifact("v1"));

    // Pin a snapshot, then swap the model twice behind it.
    const auto pinned = registry.table();
    registry.publish(tenant, taggedArtifact("v2"));
    registry.publish(tenant, taggedArtifact("v3"));

    // The pinned snapshot still serves v1, bit for bit.
    ASSERT_NE(pinned->modelFor(tenant), nullptr);
    EXPECT_EQ(pinned->modelFor(tenant)->artifact.tag(), "v1");
    EXPECT_EQ(pinned->modelFor(tenant)->version, 1u);
    // A fresh load sees the newest.
    EXPECT_EQ(registry.table()->modelFor(tenant)->artifact.tag(),
              "v3");
}

TEST(ModelTable, SupersededModelsRetireWhenLastPinDrops)
{
    ModelRegistry registry;
    const TenantId tenant = registry.registerTenant("alpha");
    registry.publish(tenant, taggedArtifact("old"));

    // Hold the old model the way an in-flight batch does, and watch
    // its lifetime through a weak_ptr.
    std::shared_ptr<const ServedModel> pinnedModel =
        registry.table()->modelPtr(tenant);
    std::weak_ptr<const ServedModel> watch = pinnedModel;

    registry.publish(tenant, taggedArtifact("new"));
    // Superseded but pinned: still alive.
    EXPECT_FALSE(watch.expired());
    EXPECT_EQ(pinnedModel->artifact.tag(), "old");

    // The epoch ends when the pin drops; the old model is reclaimed.
    pinnedModel.reset();
    EXPECT_TRUE(watch.expired());
    EXPECT_EQ(registry.table()->modelPtr(tenant)->artifact.tag(),
              "new");
}

TEST(ModelTableDeathTest, RejectsBadPublishes)
{
    ModelRegistry registry;
    registry.registerTenant("alpha");
    EXPECT_DEATH(registry.publish(7, taggedArtifact("x")),
                 "tenant");
    EXPECT_DEATH(registry.publish(0, ModelArtifact()),
                 "predictor");
}

TEST(ModelTableDeathTest, RejectsEmptyTenantName)
{
    ModelRegistry registry;
    EXPECT_DEATH(registry.registerTenant(""), "name");
}

} // namespace
} // namespace acdse
