/**
 * @file
 * Unit tests for the observability layer (src/obs): counter, gauge and
 * histogram exactness, log2 bucket edges, span nesting/attribution,
 * multi-thread aggregation (run under TSan via the Obs* name in the
 * sanitizer matrix), snapshot merge/diff algebra, the acdse-stats-v1
 * JSON round-trip, and ACDSE_OBS=OFF no-op behaviour.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "json_reader.hh"
#include "obs/metrics.hh"
#include "obs/stats_export.hh"
#include "obs/trace_span.hh"

namespace acdse::obs
{
namespace
{

TEST(ObsCounter, AddsExactly)
{
    Counter counter;
    EXPECT_EQ(counter.value(), 0u);
    counter.add();
    counter.add(41);
    if constexpr (kEnabled) {
        EXPECT_EQ(counter.value(), 42u);
        counter.reset();
    }
    EXPECT_EQ(counter.value(), 0u);
}

TEST(ObsGauge, SetAndAdd)
{
    Gauge gauge;
    gauge.set(7);
    gauge.add(-10);
    if constexpr (kEnabled)
        EXPECT_EQ(gauge.value(), -3);
    else
        EXPECT_EQ(gauge.value(), 0);
    gauge.reset();
    EXPECT_EQ(gauge.value(), 0);
}

TEST(ObsHistogram, BucketEdges)
{
    // Bucket 0 is exactly {0}; bucket b>0 covers [2^(b-1), 2^b - 1].
    EXPECT_EQ(Histogram::bucketOf(0), 0u);
    EXPECT_EQ(Histogram::bucketOf(1), 1u);
    EXPECT_EQ(Histogram::bucketOf(2), 2u);
    EXPECT_EQ(Histogram::bucketOf(3), 2u);
    EXPECT_EQ(Histogram::bucketOf(4), 3u);
    EXPECT_EQ(Histogram::bucketOf(1023), 10u);
    EXPECT_EQ(Histogram::bucketOf(1024), 11u);
    EXPECT_EQ(Histogram::bucketOf(~std::uint64_t{0}), 64u);

    for (std::size_t b = 0; b < kBuckets; ++b) {
        EXPECT_EQ(Histogram::bucketOf(Histogram::bucketLow(b)), b);
        EXPECT_EQ(Histogram::bucketOf(Histogram::bucketHigh(b)), b);
    }
    EXPECT_EQ(Histogram::bucketLow(0), 0u);
    EXPECT_EQ(Histogram::bucketHigh(0), 0u);
    EXPECT_EQ(Histogram::bucketLow(1), 1u);
    EXPECT_EQ(Histogram::bucketHigh(64), ~std::uint64_t{0});
}

TEST(ObsHistogram, RecordsExactMoments)
{
    Histogram histogram;
    for (std::uint64_t v : {5u, 9u, 0u, 1000u})
        histogram.record(v);
    const HistogramSnapshot snap = histogram.read();
    if constexpr (!kEnabled) {
        EXPECT_EQ(snap.count, 0u);
        return;
    }
    EXPECT_EQ(snap.count, 4u);
    EXPECT_EQ(snap.sum, 1014u);
    EXPECT_EQ(snap.min, 0u);
    EXPECT_EQ(snap.max, 1000u);
    EXPECT_DOUBLE_EQ(snap.mean(), 1014.0 / 4.0);
    EXPECT_EQ(snap.buckets[0], 1u);                       // 0
    EXPECT_EQ(snap.buckets[Histogram::bucketOf(5)], 1u);  // 5
    EXPECT_EQ(snap.buckets[Histogram::bucketOf(9)], 1u);  // 9
    EXPECT_EQ(snap.buckets[10], 1u);                      // 1000
}

TEST(ObsHistogram, EmptyReadsZero)
{
    Histogram histogram;
    const HistogramSnapshot snap = histogram.read();
    EXPECT_EQ(snap.count, 0u);
    EXPECT_EQ(snap.min, 0u); // not the ~0 sentinel
    EXPECT_EQ(snap.max, 0u);
    EXPECT_DOUBLE_EQ(snap.mean(), 0.0);
}

TEST(ObsCounter, MultiThreadAggregationIsExact)
{
    // Sharded relaxed atomics must still add up exactly across
    // threads. This is the TSan witness for the whole wait-free path.
    Counter counter;
    Histogram histogram;
    constexpr std::size_t kThreads = 8;
    constexpr std::size_t kPerThread = 10000;
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (std::size_t i = 0; i < kPerThread; ++i) {
                counter.add(1);
                histogram.record(3);
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    if constexpr (kEnabled) {
        EXPECT_EQ(counter.value(), kThreads * kPerThread);
        const HistogramSnapshot snap = histogram.read();
        EXPECT_EQ(snap.count, kThreads * kPerThread);
        EXPECT_EQ(snap.sum, 3u * kThreads * kPerThread);
        EXPECT_EQ(snap.min, 3u);
        EXPECT_EQ(snap.max, 3u);
    } else {
        EXPECT_EQ(counter.value(), 0u);
    }
}

TEST(ObsRegistry, InternsByName)
{
    Registry registry;
    Counter &a = registry.counter("x/count");
    Counter &b = registry.counter("x/count");
    EXPECT_EQ(&a, &b);
    Gauge &g = registry.gauge("x/depth");
    EXPECT_EQ(&g, &registry.gauge("x/depth"));
    Stage &s = registry.stage("x/stage");
    EXPECT_EQ(&s, &registry.stage("x/stage"));
    EXPECT_EQ(s.path(), "x/stage");
}

TEST(ObsRegistryDeathTest, RejectsKindCollision)
{
    Registry registry;
    registry.counter("name");
    EXPECT_DEATH(registry.gauge("name"), "already registered");
    EXPECT_DEATH(registry.histogram("name"), "already registered");
}

TEST(ObsRegistry, ResetZeroesButKeepsNames)
{
    Registry registry;
    registry.counter("c").add(5);
    registry.gauge("g").set(5);
    registry.histogram("h").record(5);
    registry.reset();
    const Snapshot snap = registry.snapshot();
    ASSERT_TRUE(snap.counters.contains("c"));
    EXPECT_EQ(snap.counters.at("c"), 0u);
    EXPECT_EQ(snap.gauges.at("g"), 0);
    EXPECT_EQ(snap.histograms.at("h").count, 0u);
}

TEST(ObsTraceSpan, AttributesNestedTimeToParent)
{
    if constexpr (!kEnabled)
        GTEST_SKIP() << "spans compiled out (ACDSE_OBS=OFF)";
    Registry registry;
    Stage &outer = registry.stage("t/outer");
    Stage &inner = registry.stage("t/inner");
    {
        const TraceSpan outerSpan(outer);
        EXPECT_EQ(TraceSpan::current()->stage(), &outer);
        {
            const TraceSpan innerSpan(inner);
            EXPECT_EQ(TraceSpan::current()->stage(), &inner);
        }
        EXPECT_EQ(TraceSpan::current()->stage(), &outer);
    }
    EXPECT_EQ(TraceSpan::current(), nullptr);

    const Snapshot snap = registry.snapshot();
    const StageSnapshot &outerSnap = snap.stages.at("t/outer");
    const StageSnapshot &innerSnap = snap.stages.at("t/inner");
    EXPECT_EQ(outerSnap.count, 1u);
    EXPECT_EQ(innerSnap.count, 1u);
    // The inner span's whole inclusive time was credited to the outer
    // span's child time, so outer self time excludes it...
    EXPECT_EQ(outerSnap.childNs, innerSnap.totalNs);
    // ...and inclusive nesting holds.
    EXPECT_GE(outerSnap.totalNs, innerSnap.totalNs);
    EXPECT_GE(outerSnap.selfMs(), 0.0);
    EXPECT_DOUBLE_EQ(outerSnap.totalMs(),
                     outerSnap.selfMs() +
                         static_cast<double>(outerSnap.childNs) / 1e6);
}

TEST(ObsTraceSpan, SiblingsAccumulate)
{
    if constexpr (!kEnabled)
        GTEST_SKIP() << "spans compiled out (ACDSE_OBS=OFF)";
    Registry registry;
    Stage &stage = registry.stage("t/repeat");
    for (int i = 0; i < 3; ++i) {
        const TraceSpan span(stage);
    }
    const StageSnapshot snap = registry.snapshot().stages.at("t/repeat");
    EXPECT_EQ(snap.count, 3u);
    EXPECT_EQ(snap.spans.count, 3u);
    EXPECT_GE(snap.spans.max, snap.spans.min);
}

TEST(ObsTraceSpan, SpansOnOtherThreadsHaveNoParent)
{
    if constexpr (!kEnabled)
        GTEST_SKIP() << "spans compiled out (ACDSE_OBS=OFF)";
    Registry registry;
    Stage &outer = registry.stage("t/outer");
    Stage &worker = registry.stage("t/worker");
    {
        const TraceSpan outerSpan(outer);
        std::thread([&] {
            EXPECT_EQ(TraceSpan::current(), nullptr);
            const TraceSpan workerSpan(worker);
        }).join();
    }
    const Snapshot snap = registry.snapshot();
    // Cross-thread spans are deliberately not attributed as children.
    EXPECT_EQ(snap.stages.at("t/outer").childNs, 0u);
    EXPECT_EQ(snap.stages.at("t/worker").count, 1u);
}

TEST(ObsSnapshot, MergeAddsAndDiffSubtracts)
{
    Registry a;
    Registry b;
    a.counter("n").add(2);
    b.counter("n").add(3);
    b.counter("only-b").add(1);
    a.histogram("h").record(4);
    b.histogram("h").record(64);

    Snapshot merged = a.snapshot();
    merged.merge(b.snapshot());
    if constexpr (kEnabled) {
        EXPECT_EQ(merged.counters.at("n"), 5u);
        EXPECT_EQ(merged.counters.at("only-b"), 1u);
        EXPECT_EQ(merged.histograms.at("h").count, 2u);
        EXPECT_EQ(merged.histograms.at("h").min, 4u);
        EXPECT_EQ(merged.histograms.at("h").max, 64u);
    }

    const Snapshot before = b.snapshot();
    b.counter("n").add(10);
    b.histogram("h").record(8);
    const Snapshot delta = diff(before, b.snapshot());
    if constexpr (kEnabled) {
        EXPECT_EQ(delta.counters.at("n"), 10u);
        EXPECT_EQ(delta.counters.at("only-b"), 0u);
        EXPECT_EQ(delta.histograms.at("h").count, 1u);
        EXPECT_EQ(delta.histograms.at("h").sum, 8u);
        EXPECT_EQ(
            delta.histograms.at("h").buckets[Histogram::bucketOf(8)],
            1u);
    } else {
        EXPECT_EQ(delta.counters.at("n"), 0u);
    }
}

TEST(ObsExport, StatsJsonRoundTrips)
{
    Registry registry;
    registry.counter("work/items").add(12);
    registry.gauge("work/depth").set(-2);
    registry.histogram("work/ns").record(100);
    registry.histogram("work/ns").record(3000);
    // Intern the stage by name first: under ACDSE_OBS=OFF the span
    // constructor is a no-op and would never create it, but an
    // explicitly registered stage still exports (as zeros).
    Stage &stage_ref = registry.stage("work/stage");
    {
        const TraceSpan span(stage_ref);
    }

    const std::string json = statsToJson(registry.snapshot());
    const testjson::Value doc = testjson::parse(json);
    EXPECT_EQ(doc.at("schema").asString(), kStatsSchema);
    ASSERT_TRUE(doc.at("counters").isObject());
    ASSERT_TRUE(doc.at("gauges").isObject());
    ASSERT_TRUE(doc.at("histograms").isObject());
    ASSERT_TRUE(doc.at("stages").isObject());

    const double items = doc.at("counters").at("work/items").asNumber();
    const double depth = doc.at("gauges").at("work/depth").asNumber();
    const testjson::Value &hist = doc.at("histograms").at("work/ns");
    const testjson::Value &stage = doc.at("stages").at("work/stage");
    if constexpr (kEnabled) {
        EXPECT_EQ(items, 12.0);
        EXPECT_EQ(depth, -2.0);
        EXPECT_EQ(hist.at("count").asNumber(), 2.0);
        EXPECT_EQ(hist.at("sum").asNumber(), 3100.0);
        EXPECT_EQ(hist.at("min").asNumber(), 100.0);
        EXPECT_EQ(hist.at("max").asNumber(), 3000.0);
        // Two occupied buckets, each with an inclusive upper edge that
        // contains its sample.
        ASSERT_EQ(hist.at("buckets").array.size(), 2u);
        EXPECT_GE(hist.at("buckets").array[0].at("le").asNumber(),
                  100.0);
        EXPECT_EQ(stage.at("count").asNumber(), 1.0);
        EXPECT_GE(stage.at("total_ms").asNumber(), 0.0);
        EXPECT_GE(stage.at("total_ms").asNumber(),
                  stage.at("self_ms").asNumber() - 1e-9);
    } else {
        // OFF builds still emit a schema-valid, all-zero document.
        EXPECT_EQ(items, 0.0);
        EXPECT_EQ(depth, 0.0);
        EXPECT_EQ(hist.at("count").asNumber(), 0.0);
        EXPECT_TRUE(hist.at("buckets").array.empty());
        EXPECT_EQ(stage.at("count").asNumber(), 0.0);
    }
}

TEST(ObsHistogram, QuantileInterpolatesWithinBuckets)
{
    Histogram hist;
    // 100 samples of 10 and one of 1000: the p50 lands inside the
    // bucket holding 10 and the p999 inside the bucket holding 1000.
    for (int i = 0; i < 100; ++i)
        hist.record(10);
    hist.record(1000);
    const HistogramSnapshot snap = hist.read();
    if constexpr (kEnabled) {
        const double p50 = snap.quantile(0.50);
        EXPECT_GT(p50, 0.0);
        EXPECT_LE(p50,
                  static_cast<double>(Histogram::bucketHigh(
                      Histogram::bucketOf(10))));
        const double p999 = snap.quantile(0.999);
        EXPECT_GT(p999, p50);
        EXPECT_LE(p999,
                  static_cast<double>(Histogram::bucketHigh(
                      Histogram::bucketOf(1000))));
        // Degenerate edges.
        EXPECT_EQ(HistogramSnapshot{}.quantile(0.5), 0.0);
    } else {
        EXPECT_EQ(snap.quantile(0.5), 0.0);
    }
}

TEST(ObsReservoir, ExactQuantilesBelowCapacity)
{
    Reservoir reservoir;
    // 1..1000 in a shuffled-ish order; fewer offers than capacity
    // (4096), so the sample is the exact stream.
    for (std::uint64_t i = 0; i < 1000; ++i)
        reservoir.record((i * 617) % 1000 + 1);
    const ReservoirSnapshot snap = reservoir.read();
    if constexpr (kEnabled) {
        EXPECT_EQ(snap.count, 1000u);
        EXPECT_EQ(snap.samples.size(), 1000u);
        // Nearest-rank on the full stream is exact.
        EXPECT_EQ(snap.quantile(0.0), 1u);
        EXPECT_EQ(snap.quantile(1.0), 1000u);
        EXPECT_EQ(snap.quantile(0.5), 500u);
        EXPECT_EQ(snap.quantile(0.99), 990u);
    } else {
        EXPECT_EQ(snap.count, 0u);
        EXPECT_EQ(snap.quantile(0.5), 0u);
    }
}

TEST(ObsReservoir, DeterministicBeyondCapacityAndResettable)
{
    // Algorithm R with splitmix64(n) randomness: the retained sample
    // is a pure function of the offer sequence, so two identical runs
    // agree exactly (the repo's deterministic-rng rule).
    const std::size_t total = Reservoir::kReservoirCapacity * 3;
    auto fill = [&](Reservoir &reservoir) {
        for (std::uint64_t i = 0; i < total; ++i)
            reservoir.record(i);
    };
    Reservoir a;
    Reservoir b;
    fill(a);
    fill(b);
    const ReservoirSnapshot sa = a.read();
    const ReservoirSnapshot sb = b.read();
    if constexpr (kEnabled) {
        EXPECT_EQ(sa.count, total);
        EXPECT_EQ(sa.samples.size(), Reservoir::kReservoirCapacity);
        EXPECT_EQ(sa.samples, sb.samples);
        // The subsample still spans the stream's range roughly.
        EXPECT_LT(sa.quantile(0.1), sa.quantile(0.9));
    }
    a.reset();
    const ReservoirSnapshot cleared = a.read();
    EXPECT_EQ(cleared.count, 0u);
    EXPECT_TRUE(cleared.samples.empty());
}

TEST(ObsReservoir, RegistryInternsAndExports)
{
    Registry registry;
    Reservoir &res = registry.reservoir("lat");
    EXPECT_EQ(&res, &registry.reservoir("lat"));
    for (std::uint64_t i = 1; i <= 100; ++i)
        res.record(i * 1000);

    const Snapshot snap = registry.snapshot();
    const std::string json = statsToJson(snap);
    const testjson::Value doc = testjson::parse(json);
    ASSERT_TRUE(doc.at("reservoirs").isObject());
    const testjson::Value &exported = doc.at("reservoirs").at("lat");
    if constexpr (kEnabled) {
        EXPECT_EQ(snap.reservoirs.at("lat").count, 100u);
        EXPECT_EQ(exported.at("count").asNumber(), 100.0);
        EXPECT_EQ(exported.at("retained").asNumber(), 100.0);
        EXPECT_EQ(exported.at("p50").asNumber(), 50000.0);
        EXPECT_EQ(exported.at("p99").asNumber(), 99000.0);
        EXPECT_GE(exported.at("p999").asNumber(),
                  exported.at("p99").asNumber());
        // Histogram export now carries quantile keys too.
        Registry histReg;
        histReg.histogram("h").record(7);
        const testjson::Value hdoc = testjson::parse(
            statsToJson(histReg.snapshot()));
        EXPECT_GT(hdoc.at("histograms").at("h").at("p50").asNumber(),
                  0.0);
    } else {
        EXPECT_EQ(exported.at("count").asNumber(), 0.0);
        EXPECT_EQ(exported.at("p99").asNumber(), 0.0);
    }

    registry.reset();
    EXPECT_EQ(registry.reservoir("lat").read().count, 0u);
}

TEST(ObsSnapshot, ReservoirMergeAndDiff)
{
    Registry a;
    Registry b;
    for (std::uint64_t i = 0; i < 10; ++i)
        a.reservoir("r").record(100 + i);
    for (std::uint64_t i = 0; i < 5; ++i)
        b.reservoir("r").record(10000 + i);

    Snapshot merged = a.snapshot();
    merged.merge(b.snapshot());
    if constexpr (kEnabled) {
        EXPECT_EQ(merged.reservoirs.at("r").count, 15u);
        EXPECT_EQ(merged.reservoirs.at("r").samples.size(), 15u);
        // Merged samples stay sorted for nearest-rank quantiles.
        EXPECT_TRUE(std::is_sorted(
            merged.reservoirs.at("r").samples.begin(),
            merged.reservoirs.at("r").samples.end()));
    }

    const Snapshot before = b.snapshot();
    b.reservoir("r").record(20000);
    const Snapshot delta = diff(before, b.snapshot());
    if constexpr (kEnabled) {
        // Reservoir diffs keep the after-sample; the count is the
        // true delta.
        EXPECT_EQ(delta.reservoirs.at("r").count, 1u);
        EXPECT_EQ(delta.reservoirs.at("r").samples.size(), 6u);
    }
}

TEST(ObsMode, CompiledModeIsConsistent)
{
    // kEnabled mirrors the ACDSE_OBS CMake knob; mutation no-ops are
    // covered per-primitive above. This pins the define itself.
#if defined(ACDSE_OBS_DISABLED)
    EXPECT_FALSE(kEnabled);
#else
    EXPECT_TRUE(kEnabled);
#endif
}

} // namespace
} // namespace acdse::obs
