/**
 * @file
 * Bit-exact determinism of every parallelised pipeline stage: a
 * 1-thread and an N-thread run of the same campaign, training sweep or
 * evaluation sweep must produce identical doubles. This is the
 * contract that makes the thread pool transparent -- parallelism is a
 * scheduling decision, never a numerical one.
 *
 * All comparisons are EXPECT_EQ on doubles (no tolerance) on purpose.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <vector>

#include "base/thread_pool.hh"
#include "core/evaluation.hh"

namespace acdse
{
namespace
{

CampaignOptions
tinyOptions(const std::string &tag, std::size_t threads)
{
    CampaignOptions options;
    options.numConfigs = 24;
    options.traceLength = 1200;
    options.warmupInstructions = 300;
    options.threads = threads;
    options.quiet = true;
    options.cacheDir =
        (std::filesystem::temp_directory_path() / tag).string();
    std::filesystem::create_directories(options.cacheDir);
    return options;
}

const std::vector<std::string> kPrograms{"crc32", "sha", "adpcm",
                                         "stringsearch"};

TEST(ParallelDeterminism, CampaignFillIsThreadCountInvariant)
{
    // Distinct cache dirs so the second campaign cannot shortcut by
    // loading the first one's rows from disk.
    Campaign serial(kPrograms, tinyOptions("acdse_det_c1", 1));
    Campaign parallel(kPrograms, tinyOptions("acdse_det_cN", 5));
    serial.ensureComputed();
    parallel.ensureComputed();
    for (std::size_t p = 0; p < kPrograms.size(); ++p) {
        EXPECT_EQ(serial.metricRow(p, Metric::Cycles),
                  parallel.metricRow(p, Metric::Cycles));
        EXPECT_EQ(serial.metricRow(p, Metric::Energy),
                  parallel.metricRow(p, Metric::Energy));
    }
}

class EvaluationDeterminism : public ::testing::Test
{
  protected:
    static Campaign &
    campaign()
    {
        static Campaign instance(kPrograms,
                                 tinyOptions("acdse_det_eval", 0));
        instance.ensureComputed();
        return instance;
    }

    static std::vector<std::size_t>
    allPrograms()
    {
        std::vector<std::size_t> idx(kPrograms.size());
        for (std::size_t i = 0; i < idx.size(); ++i)
            idx[i] = i;
        return idx;
    }
};

TEST_F(EvaluationDeterminism, ProgramSpecificSweepMatchesAcrossThreads)
{
    Evaluator serial(campaign(), {}, 1);
    Evaluator parallel(campaign(), {}, 6);
    const auto a = serial.evaluateProgramSpecificSweep(
        allPrograms(), Metric::Cycles, 12, 0x5eed'0001ULL);
    const auto b = parallel.evaluateProgramSpecificSweep(
        allPrograms(), Metric::Cycles, 12, 0x5eed'0001ULL);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].rmaePercent, b[i].rmaePercent) << "fold " << i;
        EXPECT_EQ(a[i].correlation, b[i].correlation) << "fold " << i;
        EXPECT_EQ(a[i].trainingErrorPercent, b[i].trainingErrorPercent)
            << "fold " << i;
    }
}

TEST_F(EvaluationDeterminism, ArchCentricSweepMatchesAcrossThreads)
{
    Evaluator serial(campaign(), {}, 1);
    Evaluator parallel(campaign(), {}, 6);
    const auto a = serial.evaluateArchCentricSweep(
        allPrograms(), Metric::Cycles, 12, 6, 0x5eed'0042ULL);
    const auto b = parallel.evaluateArchCentricSweep(
        allPrograms(), Metric::Cycles, 12, 6, 0x5eed'0042ULL);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].rmaePercent, b[i].rmaePercent) << "fold " << i;
        EXPECT_EQ(a[i].correlation, b[i].correlation) << "fold " << i;
        EXPECT_EQ(a[i].trainingErrorPercent, b[i].trainingErrorPercent)
            << "fold " << i;
    }
}

TEST_F(EvaluationDeterminism, SweepMatchesSerialSingleFoldCalls)
{
    // The sweep is a drop-in for the hand-written per-program loop the
    // figure benches used to run: element i must be *exactly* the
    // single-fold call.
    Evaluator sweeper(campaign(), {}, 6);
    const auto swept = sweeper.evaluateArchCentricSweep(
        allPrograms(), Metric::Energy, 10, 5, 0x5eed'0099ULL);

    Evaluator reference(campaign(), {}, 1);
    for (std::size_t i = 0; i < kPrograms.size(); ++i) {
        std::vector<std::size_t> training;
        for (std::size_t q = 0; q < kPrograms.size(); ++q) {
            if (q != i)
                training.push_back(q);
        }
        const auto one = reference.evaluateArchCentric(
            i, Metric::Energy, training, 10, 5, 0x5eed'0099ULL);
        EXPECT_EQ(swept[i].rmaePercent, one.rmaePercent) << "fold " << i;
        EXPECT_EQ(swept[i].correlation, one.correlation) << "fold " << i;
        EXPECT_EQ(swept[i].trainingErrorPercent,
                  one.trainingErrorPercent)
            << "fold " << i;
    }
}

TEST_F(EvaluationDeterminism, WarmedCacheDoesNotChangeResults)
{
    Evaluator cold(campaign(), {}, 4);
    Evaluator warm(campaign(), {}, 4);
    warm.warmProgramModels(allPrograms(), Metric::Cycles, 10,
                           0x5eed'0123ULL);
    const auto a = cold.evaluateArchCentricSweep(
        allPrograms(), Metric::Cycles, 10, 5, 0x5eed'0123ULL);
    const auto b = warm.evaluateArchCentricSweep(
        allPrograms(), Metric::Cycles, 10, 5, 0x5eed'0123ULL);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].rmaePercent, b[i].rmaePercent);
        EXPECT_EQ(a[i].correlation, b[i].correlation);
    }
}

TEST_F(EvaluationDeterminism, OfflineTrainingIsPoolContextInvariant)
{
    // trainOffline parallelises over the shared pool; run it once from
    // the main thread (pooled path) and once from inside a worker
    // (inline path) -- identical predictors must come out.
    std::vector<ProgramTrainingSet> sets(3);
    Campaign &c = campaign();
    for (std::size_t j = 0; j < sets.size(); ++j) {
        sets[j].name = c.programs()[j];
        sets[j].configs = c.configs();
        sets[j].values = c.metricRow(j, Metric::Cycles);
    }

    ArchitectureCentricPredictor pooled;
    pooled.trainOffline(sets);

    ThreadPool pool(4);
    ArchitectureCentricPredictor inlined;
    pool.submit([&] { inlined.trainOffline(sets); }).get();

    const auto &probe = c.configs();
    std::vector<double> responses;
    for (std::size_t i = 0; i < 6; ++i)
        responses.push_back(c.result(3, i).cycles);
    const std::vector<MicroarchConfig> response_configs(
        probe.begin(), probe.begin() + 6);
    pooled.fitResponses(response_configs, responses);
    pool.submit([&] { inlined.fitResponses(response_configs, responses); })
        .get();

    for (const auto &config : probe)
        EXPECT_EQ(pooled.predict(config), inlined.predict(config));
    EXPECT_EQ(pooled.trainingErrorPercent(),
              inlined.trainingErrorPercent());
}

} // namespace
} // namespace acdse
