/**
 * @file
 * Unit tests for the Table 1 / Table 2 parameter definitions.
 */

#include <gtest/gtest.h>

#include "arch/parameter.hh"

namespace acdse
{
namespace
{

TEST(Parameter, ThirteenParameters)
{
    EXPECT_EQ(kNumParams, 13u);
    EXPECT_EQ(paramSpecs().size(), 13u);
}

/** Table 1's per-parameter value counts. */
struct CountCase
{
    Param param;
    std::size_t count;
    int min;
    int max;
    int baseline;
};

class Table1Counts : public ::testing::TestWithParam<CountCase>
{
};

TEST_P(Table1Counts, MatchesPaper)
{
    const CountCase &c = GetParam();
    const ParamSpec &spec = paramSpec(c.param);
    EXPECT_EQ(spec.count(), c.count) << spec.name;
    EXPECT_EQ(spec.min(), c.min) << spec.name;
    EXPECT_EQ(spec.max(), c.max) << spec.name;
    EXPECT_EQ(spec.baseline, c.baseline) << spec.name;
    EXPECT_TRUE(spec.contains(c.baseline)) << spec.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllParams, Table1Counts,
    ::testing::Values(CountCase{Param::Width, 4, 2, 8, 4},
                      CountCase{Param::RobSize, 17, 32, 160, 96},
                      CountCase{Param::IqSize, 10, 8, 80, 32},
                      CountCase{Param::LsqSize, 10, 8, 80, 48},
                      CountCase{Param::RfSize, 16, 40, 160, 96},
                      CountCase{Param::RfReadPorts, 8, 2, 16, 8},
                      CountCase{Param::RfWritePorts, 8, 1, 8, 4},
                      CountCase{Param::BpredSize, 6, 1, 32, 16},
                      CountCase{Param::BtbSize, 3, 1, 4, 4},
                      CountCase{Param::MaxBranches, 4, 8, 32, 16},
                      CountCase{Param::Il1Size, 5, 8, 128, 32},
                      CountCase{Param::Dl1Size, 5, 8, 128, 32},
                      CountCase{Param::L2Size, 5, 256, 4096, 2048}));

TEST(Parameter, ValuesAscending)
{
    for (const auto &spec : paramSpecs()) {
        for (std::size_t i = 1; i < spec.count(); ++i)
            EXPECT_LT(spec.values[i - 1], spec.values[i]) << spec.name;
    }
}

TEST(Parameter, IndexOfRoundTrips)
{
    for (const auto &spec : paramSpecs()) {
        for (std::size_t i = 0; i < spec.count(); ++i)
            EXPECT_EQ(spec.indexOf(spec.values[i]), i) << spec.name;
    }
}

TEST(Parameter, ContainsRejectsIllegal)
{
    EXPECT_FALSE(paramSpec(Param::Width).contains(5));
    EXPECT_FALSE(paramSpec(Param::RobSize).contains(33));
    EXPECT_FALSE(paramSpec(Param::BpredSize).contains(3));
}

TEST(ParameterDeathTest, IndexOfIllegalValuePanics)
{
    EXPECT_DEATH(paramSpec(Param::Width).indexOf(5), "not legal");
}

TEST(Parameter, FunctionalUnitsMatchTable2b)
{
    // "for a four-way machine, we used four integer ALUs, two integer
    //  multipliers, two floating point ALUs, and one floating point
    //  multiplier/divider" (Section 3.1).
    const FunctionalUnitCounts four = functionalUnitsForWidth(4);
    EXPECT_EQ(four.intAlu, 4);
    EXPECT_EQ(four.intMul, 2);
    EXPECT_EQ(four.fpAlu, 2);
    EXPECT_EQ(four.fpMulDiv, 1);
}

TEST(Parameter, FunctionalUnitsScaleWithWidth)
{
    for (int width : paramSpec(Param::Width).values) {
        const FunctionalUnitCounts fu = functionalUnitsForWidth(width);
        EXPECT_EQ(fu.intAlu, width);
        EXPECT_GE(fu.intMul, 1);
        EXPECT_GE(fu.fpAlu, 1);
        EXPECT_GE(fu.fpMulDiv, 1);
        EXPECT_LE(fu.fpMulDiv, fu.fpAlu);
    }
}

TEST(Parameter, FixedParamsSane)
{
    const FixedParams &fp = fixedParams();
    EXPECT_GT(fp.memLatency, 50);
    EXPECT_GE(fp.frontEndStages, 2);
    EXPECT_GT(fp.fpDivLatency, fp.fpMulLatency);
    EXPECT_EQ(fp.archRegs, 32);
}

} // namespace
} // namespace acdse
