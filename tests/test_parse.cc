/**
 * @file
 * Unit tests for the checked parsers (base/parse.hh) and the contract
 * macros (base/check.hh): strictness on garbage/overflow input, fatal
 * behaviour of the OrDie wrappers, and the release/debug split of
 * ACDSE_DCHECK.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>

#include "base/check.hh"
#include "base/parse.hh"

namespace acdse
{
namespace
{

TEST(ParseU64, AcceptsPlainDecimals)
{
    EXPECT_EQ(parseU64("0"), 0u);
    EXPECT_EQ(parseU64("42"), 42u);
    EXPECT_EQ(parseU64("18446744073709551615"),
              std::numeric_limits<std::uint64_t>::max());
}

TEST(ParseU64, RejectsGarbageAndOverflow)
{
    EXPECT_FALSE(parseU64(""));
    EXPECT_FALSE(parseU64("abc"));
    EXPECT_FALSE(parseU64("12abc"));   // trailing garbage
    EXPECT_FALSE(parseU64(" 12"));     // leading whitespace
    EXPECT_FALSE(parseU64("12 "));     // trailing whitespace
    EXPECT_FALSE(parseU64("+12"));     // explicit plus
    EXPECT_FALSE(parseU64("1.5"));     // fraction
    EXPECT_FALSE(parseU64("0x10"));    // hex
    // One past uint64 max: strtoull would saturate, atoll would wrap.
    EXPECT_FALSE(parseU64("18446744073709551616"));
    EXPECT_FALSE(parseU64("99999999999999999999999999"));
}

TEST(ParseU64, RejectsNegativeWhereUnsigned)
{
    // strtoull infamously accepts "-1" as 2^64-1; we must not.
    EXPECT_FALSE(parseU64("-1"));
    EXPECT_FALSE(parseU64("-0"));
}

TEST(ParseI64, AcceptsSignedRange)
{
    EXPECT_EQ(parseI64("-42"), -42);
    EXPECT_EQ(parseI64("9223372036854775807"),
              std::numeric_limits<std::int64_t>::max());
    EXPECT_EQ(parseI64("-9223372036854775808"),
              std::numeric_limits<std::int64_t>::min());
}

TEST(ParseI64, RejectsGarbageAndOverflow)
{
    EXPECT_FALSE(parseI64(""));
    EXPECT_FALSE(parseI64("--1"));
    EXPECT_FALSE(parseI64("1-"));
    EXPECT_FALSE(parseI64("9223372036854775808"));   // max + 1
    EXPECT_FALSE(parseI64("-9223372036854775809"));  // min - 1
}

TEST(ParseF64, AcceptsFiniteNumbers)
{
    EXPECT_DOUBLE_EQ(*parseF64("1.5"), 1.5);
    EXPECT_DOUBLE_EQ(*parseF64("-2e10"), -2e10);
    EXPECT_DOUBLE_EQ(*parseF64("0"), 0.0);
    EXPECT_DOUBLE_EQ(*parseF64(".25"), 0.25);
}

TEST(ParseF64, RejectsGarbageAndNonFinite)
{
    EXPECT_FALSE(parseF64(""));
    EXPECT_FALSE(parseF64("1.5.2"));
    EXPECT_FALSE(parseF64("1e"));
    EXPECT_FALSE(parseF64("nan"));
    EXPECT_FALSE(parseF64("inf"));
    EXPECT_FALSE(parseF64("-inf"));
    EXPECT_FALSE(parseF64("1e999"));  // overflows to inf
}

TEST(ParseDeathTest, OrDieWrappersAreFatalWithContext)
{
    EXPECT_EXIT(parseU64OrDie("--batch", "12x"),
                testing::ExitedWithCode(1), "--batch expects");
    EXPECT_EXIT(parseU64OrDie("ACDSE_THREADS", "-1"),
                testing::ExitedWithCode(1), "ACDSE_THREADS expects");
    EXPECT_EXIT(parseI64OrDie("--offset", "abc"),
                testing::ExitedWithCode(1), "--offset expects");
    EXPECT_EXIT(parseF64OrDie("--scale", "nan"),
                testing::ExitedWithCode(1), "--scale expects");
}

TEST(ParseDeathTest, OrDieWrappersPassGoodValuesThrough)
{
    EXPECT_EQ(parseU64OrDie("--batch", "256"), 256u);
    EXPECT_EQ(parseI64OrDie("--offset", "-3"), -3);
    EXPECT_DOUBLE_EQ(parseF64OrDie("--scale", "0.5"), 0.5);
}

TEST(CheckDeathTest, CheckPanicsWithFileLineAndMessage)
{
    EXPECT_DEATH(ACDSE_CHECK(1 + 1 == 3, "arithmetic broke"),
                 "check '1 \\+ 1 == 3' failed at .*test_parse.cc:"
                 ".*arithmetic broke");
}

TEST(CheckDeathTest, CheckFiniteRejectsNanAndInf)
{
    const double nan = std::numeric_limits<double>::quiet_NaN();
    const double inf = std::numeric_limits<double>::infinity();
    EXPECT_DEATH(ACDSE_CHECK_FINITE(nan, "bad metric"), "not finite");
    EXPECT_DEATH(ACDSE_CHECK_FINITE(inf, "bad metric"), "not finite");
    EXPECT_DEATH(ACDSE_CHECK_FINITE(-inf, "bad metric"), "not finite");
}

TEST(Check, PassingChecksAreSilent)
{
    ACDSE_CHECK(2 + 2 == 4, "never printed");
    ACDSE_CHECK_FINITE(3.14, "never printed");
    ACDSE_DCHECK(true, "never printed");
}

#if ACDSE_DCHECK_ENABLED
TEST(CheckDeathTest, DcheckFiresWhenEnabled)
{
    EXPECT_DEATH(ACDSE_DCHECK(false, "debug contract"),
                 "check 'false' failed.*debug contract");
}
#else
TEST(Check, DcheckCompilesOutInRelease)
{
    // The condition must not even be evaluated: this call would panic
    // if it ran.
    auto boom = []() -> bool {
        ACDSE_CHECK(false, "DCHECK evaluated its condition");
        return false;
    };
    ACDSE_DCHECK(boom(), "never evaluated");
}
#endif

} // namespace
} // namespace acdse
