/**
 * @file
 * Unit tests for the prediction service: served predictions match the
 * underlying predictors exactly (single- and multi-threaded), absent
 * metrics come back NaN, and the serving counters add up.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "arch/design_space.hh"
#include "serve/prediction_service.hh"

namespace acdse
{
namespace
{

double
synthetic(const MicroarchConfig &config, double wide, double mem)
{
    return 500.0 + wide * 4000.0 / config.width() +
           mem * 60000.0 /
               std::sqrt(static_cast<double>(config.l2Bytes() / 1024));
}

ArchitectureCentricPredictor
trainedPredictor(double wide, double mem)
{
    const auto train = DesignSpace::sampleValidConfigs(64, 1);
    std::vector<ProgramTrainingSet> sets(2);
    for (int j = 0; j < 2; ++j) {
        sets[j].name = "p" + std::to_string(j);
        sets[j].configs = train;
        for (const auto &c : train)
            sets[j].values.push_back(
                synthetic(c, wide + 0.5 * j, mem));
    }
    ArchitectureCentricPredictor predictor;
    predictor.trainOffline(sets);
    const auto rc = DesignSpace::sampleValidConfigs(16, 2);
    std::vector<double> responses;
    for (const auto &c : rc)
        responses.push_back(synthetic(c, wide, mem));
    predictor.fitResponses(rc, responses);
    return predictor;
}

ModelArtifact
twoMetricArtifact()
{
    ModelArtifact artifact;
    artifact.setTag("service test");
    artifact.add(Metric::Cycles, trainedPredictor(1.0, 1.0));
    artifact.add(Metric::Energy, trainedPredictor(0.5, 2.0));
    return artifact;
}

TEST(PredictionService, MatchesDirectPredictorExactly)
{
    const ModelArtifact artifact = twoMetricArtifact();
    ServeOptions options;
    options.threads = 1;
    PredictionService service(artifact, options);

    const auto queries = DesignSpace::sampleValidConfigs(40, 3);
    const auto rows = service.predict(queries);
    ASSERT_EQ(rows.size(), queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
        EXPECT_EQ(rows[i].get(Metric::Cycles),
                  artifact.predictor(Metric::Cycles).predict(queries[i]));
        EXPECT_EQ(rows[i].get(Metric::Energy),
                  artifact.predictor(Metric::Energy).predict(queries[i]));
    }
}

TEST(PredictionService, AbsentMetricsAreNaN)
{
    ModelArtifact artifact;
    artifact.add(Metric::Cycles, trainedPredictor(1.0, 1.0));
    ServeOptions options;
    options.threads = 1;
    PredictionService service(std::move(artifact), options);
    const PredictionRow row =
        service.predictOne(DesignSpace::baseline());
    EXPECT_FALSE(std::isnan(row.get(Metric::Cycles)));
    EXPECT_TRUE(std::isnan(row.get(Metric::Energy)));
    EXPECT_TRUE(std::isnan(row.get(Metric::Ed)));
    EXPECT_TRUE(std::isnan(row.get(Metric::Edd)));
}

TEST(PredictionService, ThreadPoolMatchesSingleThread)
{
    const ModelArtifact artifact = twoMetricArtifact();
    const auto queries = DesignSpace::sampleValidConfigs(700, 4);

    ServeOptions single;
    single.threads = 1;
    PredictionService reference(artifact, single);
    const auto expected = reference.predict(queries);

    ServeOptions pooled;
    pooled.threads = 4;
    pooled.chunk = 16;       // force many chunks
    pooled.inlineBelow = 0;  // force the pool path
    PredictionService service(artifact, pooled);
    EXPECT_EQ(service.poolThreads(), 3u);

    // Several batches through the same pool (reuse across generations).
    // Compare metric by metric: the absent ones are NaN, and NaN never
    // compares equal to itself.
    for (int round = 0; round < 3; ++round) {
        const auto rows = service.predict(queries);
        ASSERT_EQ(rows.size(), expected.size());
        for (std::size_t i = 0; i < rows.size(); ++i) {
            EXPECT_EQ(rows[i].get(Metric::Cycles),
                      expected[i].get(Metric::Cycles));
            EXPECT_EQ(rows[i].get(Metric::Energy),
                      expected[i].get(Metric::Energy));
        }
    }
}

/**
 * Regression test for the stale-worker hand-off race: a worker that
 * wakes for a batch only after the batch has completed must not claim
 * chunks of the *next* batch against the previous batch's (destroyed)
 * queries/rows. Tiny back-to-back batches with one-point chunks and a
 * wide pool maximise the window where a late worker still holds the
 * old batch pointers while a new batch resets the chunk cursor; the
 * symptom of the race is rows of the new batch left NaN (its chunk 0
 * was "done" by the stale worker against the old batch).
 */
TEST(PredictionService, BackToBackBatchesNeverDropChunks)
{
    const ModelArtifact artifact = twoMetricArtifact();

    ServeOptions single;
    single.threads = 1;
    PredictionService reference(artifact, single);

    ServeOptions churn;
    churn.threads = 8;
    churn.chunk = 1;       // one point per claim: maximal hand-off churn
    churn.inlineBelow = 0; // force the pool path even for tiny batches
    PredictionService service(artifact, churn);

    const auto all = DesignSpace::sampleValidConfigs(3, 7);
    const std::vector<MicroarchConfig> queries(all.begin(),
                                               all.begin() + 2);
    const auto expected = reference.predict(queries);
    for (int round = 0; round < 2000; ++round) {
        const auto rows = service.predict(queries);
        ASSERT_EQ(rows.size(), queries.size());
        for (std::size_t i = 0; i < rows.size(); ++i) {
            ASSERT_EQ(rows[i].get(Metric::Cycles),
                      expected[i].get(Metric::Cycles))
                << "round " << round << " row " << i;
            ASSERT_EQ(rows[i].get(Metric::Energy),
                      expected[i].get(Metric::Energy))
                << "round " << round << " row " << i;
        }
    }
}

TEST(PredictionService, CountersAddUp)
{
    ServeOptions options;
    options.threads = 2;
    options.inlineBelow = 0;
    options.chunk = 8;
    PredictionService service(twoMetricArtifact(), options);

    const auto queries = DesignSpace::sampleValidConfigs(100, 5);
    service.predict(queries);
    service.predict(queries);
    service.predictOne(DesignSpace::baseline());

    // The counters are registry-backed (src/obs); an ACDSE_OBS=OFF
    // build compiles the instrumentation out and reads all zeros.
    const ServiceStats stats = service.stats();
    if constexpr (obs::kEnabled) {
        EXPECT_EQ(stats.batches, 3u);
        EXPECT_EQ(stats.points, 201u);
        EXPECT_GT(stats.totalMs, 0.0);
        EXPECT_GE(stats.maxMs, stats.minMs);
        EXPECT_GT(stats.pointsPerSecond(), 0.0);
    } else {
        EXPECT_EQ(stats.batches, 0u);
        EXPECT_EQ(stats.points, 0u);
        EXPECT_EQ(stats.totalMs, 0.0);
    }

    service.resetStats();
    EXPECT_EQ(service.stats().batches, 0u);
    EXPECT_EQ(service.stats().points, 0u);
}

TEST(PredictionService, EmptyBatchIsANoOp)
{
    ServeOptions options;
    options.threads = 2;
    PredictionService service(twoMetricArtifact(), options);
    EXPECT_TRUE(service.predict({}).empty());
    EXPECT_EQ(service.stats().batches, 0u);
}

TEST(PredictionService, FromFileServesSavedArtifact)
{
    const ModelArtifact artifact = twoMetricArtifact();
    const std::string path =
        (std::filesystem::temp_directory_path() /
         "acdse_service_from_file.acdse")
            .string();
    saveArtifact(path, artifact);

    ServeOptions options;
    options.threads = 1;
    PredictionService service =
        PredictionService::fromFile(path, options);
    std::remove(path.c_str());
    const MicroarchConfig probe = DesignSpace::baseline();
    EXPECT_EQ(service.predictOne(probe).get(Metric::Cycles),
              artifact.predictor(Metric::Cycles).predict(probe));
}

TEST(PredictionServiceDeathTest, RejectsUnfittedArtifact)
{
    const auto train = DesignSpace::sampleValidConfigs(32, 6);
    std::vector<ProgramTrainingSet> sets(1);
    sets[0].name = "p";
    sets[0].configs = train;
    for (const auto &c : train)
        sets[0].values.push_back(synthetic(c, 1.0, 1.0));
    ArchitectureCentricPredictor offline_only;
    offline_only.trainOffline(sets);

    ModelArtifact artifact;
    artifact.add(Metric::Cycles, std::move(offline_only));
    EXPECT_DEATH(PredictionService(std::move(artifact)),
                 "no fitted responses");
}

TEST(PredictionService, AsyncPathMatchesSyncExactly)
{
    const ModelArtifact artifact = twoMetricArtifact();
    ServeOptions options;
    options.threads = 1;
    PredictionService service(artifact, options);

    const auto queries = DesignSpace::sampleValidConfigs(50, 8);
    const auto expected = service.predict(queries);

    AsyncBatch batch(queries.size());
    for (const auto &query : queries)
        ASSERT_EQ(service.submit(batch, query),
                  SubmitStatus::Accepted);
    batch.wait();

    for (std::size_t i = 0; i < queries.size(); ++i) {
        // The drainer's SIMD block path is bit-identical to the
        // synchronous chunked path (both match the raw predictor).
        EXPECT_EQ(batch.rows()[i].get(Metric::Cycles),
                  expected[i].get(Metric::Cycles));
        EXPECT_EQ(batch.rows()[i].get(Metric::Energy),
                  expected[i].get(Metric::Energy));
        // Every row is stamped with the serving version (the
        // constructor's publish is version 1).
        EXPECT_EQ(batch.versions()[i], 1u);
    }
    if constexpr (obs::kEnabled) {
        const ServiceStats stats = service.stats();
        EXPECT_EQ(stats.requests, queries.size());
        EXPECT_EQ(stats.rejected, 0u);
    }
}

TEST(PredictionService, QueueFullShedsTyped)
{
    ServeOptions options;
    options.threads = 1;
    options.maxQueue = kMinRingCapacity; // 8 slots
    options.startDrainer = false;        // deterministic: no consumer
    PredictionService service(twoMetricArtifact(), options);
    EXPECT_EQ(service.queueCapacity(), kMinRingCapacity);

    const auto queries =
        DesignSpace::sampleValidConfigs(kMinRingCapacity + 4, 9);
    AsyncBatch batch(queries.size());

    // With no drainer running the ring fills at exactly capacity;
    // every further submit is a typed rejection, not a block.
    for (std::size_t i = 0; i < kMinRingCapacity; ++i)
        ASSERT_EQ(service.submit(batch, queries[i]),
                  SubmitStatus::Accepted);
    for (std::size_t i = kMinRingCapacity; i < queries.size(); ++i)
        ASSERT_EQ(service.submit(batch, queries[i]),
                  SubmitStatus::QueueFull);
    EXPECT_EQ(batch.submitted(), kMinRingCapacity);
    EXPECT_EQ(batch.inFlight(), kMinRingCapacity);

    // Rejections are observable (serve/shed) and stats()-visible.
    if constexpr (obs::kEnabled) {
        const ServiceStats stats = service.stats();
        EXPECT_EQ(stats.requests, kMinRingCapacity);
        EXPECT_EQ(stats.rejected, 4u);
    }

    // Draining makes room again: the shed requests can be resubmitted
    // and complete normally.
    EXPECT_EQ(service.drainOnce(), kMinRingCapacity);
    EXPECT_EQ(batch.inFlight(), 0u);
    for (std::size_t i = kMinRingCapacity; i < queries.size(); ++i)
        ASSERT_EQ(service.submit(batch, queries[i]),
                  SubmitStatus::Accepted);
    EXPECT_EQ(service.drainOnce(), 4u);
    batch.wait();
    for (std::size_t i = 0; i < queries.size(); ++i)
        EXPECT_EQ(batch.rows()[i].get(Metric::Cycles),
                  service.model()->artifact.predictor(Metric::Cycles)
                      .predict(queries[i]));
}

TEST(PredictionService, TenantsRouteToTheirOwnModels)
{
    ModelArtifact alphaModel;
    alphaModel.add(Metric::Cycles, trainedPredictor(1.0, 1.0));
    ModelArtifact betaModel;
    betaModel.add(Metric::Cycles, trainedPredictor(2.0, 0.5));

    ServeOptions options;
    options.threads = 1;
    PredictionService service(alphaModel, options);
    const TenantId beta = service.registerTenant("beta");
    const TenantId bare = service.registerTenant("bare");
    service.publish(beta, betaModel);
    EXPECT_EQ(service.findTenant("beta"), beta);
    EXPECT_EQ(service.findTenant("nobody"),
              ModelRegistry::kInvalidTenant);

    const auto queries = DesignSpace::sampleValidConfigs(30, 10);
    AsyncBatch batch(3 * queries.size());
    for (const auto &query : queries) {
        // Interleave tenants so one drained chunk carries all three.
        ASSERT_EQ(service.submit(batch, kDefaultTenant, query),
                  SubmitStatus::Accepted);
        ASSERT_EQ(service.submit(batch, beta, query),
                  SubmitStatus::Accepted);
        ASSERT_EQ(service.submit(batch, bare, query),
                  SubmitStatus::Accepted);
    }
    batch.wait();

    for (std::size_t i = 0; i < queries.size(); ++i) {
        const auto &defaultRow = batch.rows()[3 * i];
        const auto &betaRow = batch.rows()[3 * i + 1];
        const auto &bareRow = batch.rows()[3 * i + 2];
        EXPECT_EQ(defaultRow.get(Metric::Cycles),
                  alphaModel.predictor(Metric::Cycles)
                      .predict(queries[i]));
        EXPECT_EQ(betaRow.get(Metric::Cycles),
                  betaModel.predictor(Metric::Cycles)
                      .predict(queries[i]));
        EXPECT_EQ(batch.versions()[3 * i], 1u);
        EXPECT_EQ(batch.versions()[3 * i + 1], 2u);
        // A registered tenant with no published model answers NaN
        // stamped version 0 rather than failing.
        EXPECT_TRUE(std::isnan(bareRow.get(Metric::Cycles)));
        EXPECT_EQ(batch.versions()[3 * i + 2], 0u);
    }

    // An id beyond the table is a typed rejection.
    EXPECT_EQ(service.submit(batch, TenantId{99}, queries[0]),
              SubmitStatus::UnknownTenant);

    // Per-tenant served-point counters appear in the snapshot.
    if constexpr (obs::kEnabled) {
        const obs::Snapshot snap = service.statsSnapshot();
        ASSERT_TRUE(
            snap.counters.count("serve/tenant/default/points"));
        ASSERT_TRUE(snap.counters.count("serve/tenant/beta/points"));
        EXPECT_EQ(snap.counters.at("serve/tenant/default/points"),
                  queries.size());
        EXPECT_EQ(snap.counters.at("serve/tenant/beta/points"),
                  queries.size());
        EXPECT_EQ(snap.counters.at("serve/tenant/bare/points"),
                  queries.size());
    }
}

TEST(PredictionService, AsyncLatencyMetricsPopulate)
{
    ServeOptions options;
    options.threads = 1;
    PredictionService service(twoMetricArtifact(), options);

    const auto queries = DesignSpace::sampleValidConfigs(20, 13);
    AsyncBatch batch(queries.size());
    for (const auto &query : queries)
        ASSERT_EQ(service.submit(batch, query),
                  SubmitStatus::Accepted);
    batch.wait();

    if constexpr (obs::kEnabled) {
        const obs::Snapshot snap = service.statsSnapshot();
        ASSERT_TRUE(
            snap.histograms.count("serve/request-latency-ns"));
        EXPECT_EQ(snap.histograms.at("serve/request-latency-ns").count,
                  queries.size());
        ASSERT_TRUE(snap.reservoirs.count("serve/request-latency"));
        EXPECT_EQ(snap.reservoirs.at("serve/request-latency").count,
                  queries.size());
        // Exact quantiles come from the reservoir; p99 of real
        // latencies is positive and at least the median.
        EXPECT_GT(service.requestLatencyQuantileMs(0.99), 0.0);
        EXPECT_GE(service.requestLatencyQuantileMs(0.99),
                  service.requestLatencyQuantileMs(0.50));
    }
}

} // namespace
} // namespace acdse
