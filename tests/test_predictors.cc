/**
 * @file
 * Unit tests for the program-specific and architecture-centric
 * predictors on controlled synthetic design spaces (no simulator in
 * the loop: targets are analytic functions of the configuration).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "arch/design_space.hh"
#include "base/statistics.hh"
#include "core/architecture_centric_predictor.hh"
#include "core/program_specific_predictor.hh"

namespace acdse
{
namespace
{

/** A smooth, positive, nonlinear "program" over the design space. */
double
syntheticSpace(const MicroarchConfig &config, double wide, double mem,
               double base)
{
    const double width_term =
        wide * 4000.0 / static_cast<double>(config.width());
    const double cache_term =
        mem * 60000.0 / std::sqrt(static_cast<double>(
                             config.l2Bytes() / 1024));
    const double window_term =
        20000.0 / std::sqrt(static_cast<double>(config.robSize()));
    return base + width_term + cache_term + window_term;
}

std::vector<MicroarchConfig>
configs(std::size_t n, std::uint64_t seed)
{
    return DesignSpace::sampleValidConfigs(n, seed);
}

std::vector<double>
values(const std::vector<MicroarchConfig> &cs, double wide, double mem,
       double base)
{
    std::vector<double> ys;
    for (const auto &c : cs)
        ys.push_back(syntheticSpace(c, wide, mem, base));
    return ys;
}

TEST(ProgramSpecificPredictor, LearnsSyntheticSpace)
{
    const auto train = configs(256, 1);
    const auto test = configs(100, 2);
    ProgramSpecificPredictor model;
    model.train(train, values(train, 1.0, 1.0, 5000.0));

    std::vector<double> predicted, actual;
    for (const auto &c : test) {
        predicted.push_back(model.predict(c));
        actual.push_back(syntheticSpace(c, 1.0, 1.0, 5000.0));
    }
    EXPECT_LT(stats::rmae(predicted, actual), 10.0);
    EXPECT_GT(stats::correlation(predicted, actual), 0.9);
}

TEST(ProgramSpecificPredictor, MoreTrainingDataHelps)
{
    const auto test = configs(100, 3);
    double err_small, err_large;
    for (std::size_t t : {16u, 256u}) {
        const auto train = configs(t, 4);
        ProgramSpecificPredictor model;
        model.train(train, values(train, 1.5, 0.5, 2000.0));
        std::vector<double> predicted, actual;
        for (const auto &c : test) {
            predicted.push_back(model.predict(c));
            actual.push_back(syntheticSpace(c, 1.5, 0.5, 2000.0));
        }
        (t == 16u ? err_small : err_large) =
            stats::rmae(predicted, actual);
    }
    EXPECT_LT(err_large, err_small);
}

TEST(ProgramSpecificPredictor, LogTargetHandlesWideRange)
{
    ProgramSpecificOptions options;
    options.logTarget = true;
    const auto train = configs(200, 5);
    std::vector<double> ys;
    for (const auto &c : train)
        ys.push_back(std::exp(0.4 * c.width()) * 1000.0);
    ProgramSpecificPredictor model(options);
    model.train(train, ys);
    MicroarchConfig probe = DesignSpace::baseline();
    EXPECT_NEAR(model.predict(probe), std::exp(1.6) * 1000.0,
                std::exp(1.6) * 200.0);
}

TEST(ArchitectureCentric, RecoversLinearCombinationOfPrograms)
{
    // Three training "programs"; the new program is an exact linear
    // combination of them, so the regressor should nail the space.
    const auto train_configs = configs(256, 7);
    std::vector<ProgramTrainingSet> sets(3);
    const double wides[3] = {1.0, 2.0, 0.5};
    const double mems[3] = {0.2, 1.0, 2.0};
    for (int j = 0; j < 3; ++j) {
        sets[j].name = "p" + std::to_string(j);
        sets[j].configs = train_configs;
        sets[j].values =
            values(train_configs, wides[j], mems[j], 3000.0);
    }

    ArchitectureCentricPredictor model;
    model.trainOffline(sets);

    // New program = 0.5*p0 + 0.25*p1 + 0.25*p2.
    auto target = [&](const MicroarchConfig &c) {
        return 0.5 * syntheticSpace(c, wides[0], mems[0], 3000.0) +
               0.25 * syntheticSpace(c, wides[1], mems[1], 3000.0) +
               0.25 * syntheticSpace(c, wides[2], mems[2], 3000.0);
    };
    const auto response_configs = configs(32, 8);
    std::vector<double> responses;
    for (const auto &c : response_configs)
        responses.push_back(target(c));
    model.fitResponses(response_configs, responses);

    const auto test = configs(150, 9);
    std::vector<double> predicted, actual;
    for (const auto &c : test) {
        predicted.push_back(model.predict(c));
        actual.push_back(target(c));
    }
    EXPECT_LT(stats::rmae(predicted, actual), 8.0);
    EXPECT_GT(stats::correlation(predicted, actual), 0.93);
    EXPECT_LT(model.trainingErrorPercent(), 8.0);
}

TEST(ArchitectureCentric, WeightsHaveTrainingProgramArity)
{
    const auto train_configs = configs(64, 10);
    std::vector<ProgramTrainingSet> sets(4);
    for (int j = 0; j < 4; ++j) {
        sets[j].name = "p" + std::to_string(j);
        sets[j].configs = train_configs;
        sets[j].values = values(train_configs, 1.0 + j, 1.0, 1000.0);
    }
    ArchitectureCentricPredictor model;
    model.trainOffline(sets);
    model.fitResponses(configs(16, 11),
                       values(configs(16, 11), 2.0, 1.0, 1000.0));
    EXPECT_EQ(model.weights().size(), 4u);
    EXPECT_EQ(model.trainingPrograms().size(), 4u);
}

TEST(ArchitectureCentric, UseModelsSharesTrainedAnns)
{
    const auto train_configs = configs(128, 12);
    auto shared = std::make_shared<ProgramSpecificPredictor>();
    shared->train(train_configs, values(train_configs, 1.0, 1.0, 500.0));

    ArchitectureCentricPredictor model;
    model.useModels({"shared"}, {shared});
    EXPECT_TRUE(model.offlineTrained());

    const auto rc = configs(12, 13);
    model.fitResponses(rc, values(rc, 1.0, 1.0, 500.0));
    EXPECT_TRUE(model.ready());
    // With a single identical program, prediction tracks the model.
    const MicroarchConfig probe = DesignSpace::baseline();
    EXPECT_NEAR(model.predict(probe),
                syntheticSpace(probe, 1.0, 1.0, 500.0),
                0.2 * syntheticSpace(probe, 1.0, 1.0, 500.0));
}

TEST(ArchitectureCentric, RefitResponsesForNewProgram)
{
    // The offline phase is reused across new programs (the paper's key
    // cost argument): refitting responses must fully re-target the
    // model.
    const auto train_configs = configs(128, 14);
    std::vector<ProgramTrainingSet> sets(2);
    sets[0] = {"a", train_configs, values(train_configs, 1.0, 0.5, 100.0)};
    sets[1] = {"b", train_configs, values(train_configs, 0.5, 2.0, 100.0)};
    ArchitectureCentricPredictor model;
    model.trainOffline(sets);

    const auto rc = configs(24, 15);
    model.fitResponses(rc, values(rc, 1.0, 0.5, 100.0));
    const double as_a = model.predict(DesignSpace::baseline());
    model.fitResponses(rc, values(rc, 0.5, 2.0, 100.0));
    const double as_b = model.predict(DesignSpace::baseline());
    EXPECT_NEAR(as_a,
                syntheticSpace(DesignSpace::baseline(), 1.0, 0.5, 100.0),
                0.15 * as_a);
    EXPECT_NE(as_a, as_b);
}

TEST(ArchitectureCentricDeathTest, ResponsesBeforeOffline)
{
    ArchitectureCentricPredictor model;
    EXPECT_DEATH(model.fitResponses({DesignSpace::baseline()}, {1.0}),
                 "before trainOffline");
}

TEST(ArchitectureCentricDeathTest, PredictBeforeResponses)
{
    const auto train_configs = configs(32, 16);
    std::vector<ProgramTrainingSet> sets(1);
    sets[0] = {"p", train_configs, values(train_configs, 1, 1, 100.0)};
    ArchitectureCentricPredictor model;
    model.trainOffline(sets);
    EXPECT_DEATH(model.predict(DesignSpace::baseline()), "before");
}

} // namespace
} // namespace acdse
