/**
 * @file
 * Unit tests for the RBF and regression-spline models (the alternative
 * program-specific model families of paper Section 9.4).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "base/rng.hh"
#include "base/statistics.hh"
#include "ml/rbf.hh"
#include "ml/spline.hh"

namespace acdse
{
namespace
{

/** Noiseless nonlinear target on [0,1]^2. */
double
target(double a, double b)
{
    return std::sin(3.0 * a) + b * b + 0.5 * a * b;
}

void
makeData(std::vector<std::vector<double>> &xs, std::vector<double> &ys,
         int n, std::uint64_t seed)
{
    Rng rng(seed);
    for (int i = 0; i < n; ++i) {
        const double a = rng.nextDouble(0, 1);
        const double b = rng.nextDouble(0, 1);
        xs.push_back({a, b});
        ys.push_back(target(a, b));
    }
}

TEST(Rbf, FitsNonlinearSurface)
{
    std::vector<std::vector<double>> xs;
    std::vector<double> ys;
    makeData(xs, ys, 400, 1);
    RbfNetwork model;
    model.train(xs, ys);
    double max_err = 0.0;
    for (double a : {0.2, 0.5, 0.8}) {
        for (double b : {0.2, 0.5, 0.8}) {
            max_err = std::max(max_err, std::abs(model.predict({a, b}) -
                                                 target(a, b)));
        }
    }
    EXPECT_LT(max_err, 0.12);
}

TEST(Rbf, CentersClampToSampleCount)
{
    std::vector<std::vector<double>> xs{{0.0}, {1.0}, {2.0}};
    std::vector<double> ys{0.0, 1.0, 2.0};
    RbfOptions options;
    options.centers = 50;
    RbfNetwork model(options);
    model.train(xs, ys);
    EXPECT_LE(model.numCenters(), 3u);
}

TEST(Rbf, DeterministicForFixedSeed)
{
    std::vector<std::vector<double>> xs;
    std::vector<double> ys;
    makeData(xs, ys, 100, 2);
    RbfNetwork a, b;
    a.train(xs, ys);
    b.train(xs, ys);
    EXPECT_DOUBLE_EQ(a.predict({0.3, 0.7}), b.predict({0.3, 0.7}));
}

TEST(Rbf, MoreCentersFitBetter)
{
    std::vector<std::vector<double>> xs;
    std::vector<double> ys;
    makeData(xs, ys, 300, 3);
    auto sse = [&](std::size_t centers) {
        RbfOptions options;
        options.centers = centers;
        RbfNetwork model(options);
        model.train(xs, ys);
        double total = 0.0;
        for (std::size_t i = 0; i < xs.size(); ++i)
            total += std::pow(model.predict(xs[i]) - ys[i], 2);
        return total;
    };
    EXPECT_LT(sse(32), sse(2));
}

TEST(Spline, FitsSmoothCurveExactlyEnough)
{
    // 1-D cubic-ish curve: a 5-knot restricted cubic spline should nail
    // it.
    std::vector<std::vector<double>> xs;
    std::vector<double> ys;
    Rng rng(4);
    for (int i = 0; i < 300; ++i) {
        const double a = rng.nextDouble(-2, 2);
        xs.push_back({a});
        ys.push_back(a * a * a - 2.0 * a);
    }
    SplineOptions options;
    options.knots = 5;
    SplineModel model(options);
    model.train(xs, ys);
    // Restricted cubic splines are linear in the tails by
    // construction, so score the fit globally (R^2) rather than
    // point-wise at the extremes.
    double sse = 0.0, var = 0.0;
    const double mean = stats::mean(ys);
    for (std::size_t i = 0; i < xs.size(); ++i) {
        sse += std::pow(model.predict(xs[i]) - ys[i], 2);
        var += std::pow(ys[i] - mean, 2);
    }
    EXPECT_LT(sse / var, 0.05); // explains > 95% of the variance
}

TEST(Spline, LinearFunctionIsExact)
{
    std::vector<std::vector<double>> xs;
    std::vector<double> ys;
    Rng rng(5);
    for (int i = 0; i < 100; ++i) {
        const double a = rng.nextDouble(0, 10);
        const double b = rng.nextDouble(0, 10);
        xs.push_back({a, b});
        ys.push_back(3.0 * a - b + 2.0);
    }
    SplineModel model;
    model.train(xs, ys);
    EXPECT_NEAR(model.predict({5.0, 5.0}), 12.0, 0.1);
}

TEST(Spline, FewDistinctValuesFallBackToLinear)
{
    // A dimension with two distinct values cannot host cubic knots.
    std::vector<std::vector<double>> xs;
    std::vector<double> ys;
    for (int i = 0; i < 40; ++i) {
        const double a = i % 2;
        xs.push_back({a});
        ys.push_back(3.0 * a);
    }
    SplineModel model;
    model.train(xs, ys);
    EXPECT_EQ(model.basisSize(), 1u); // just the linear term
    EXPECT_NEAR(model.predict({1.0}), 3.0, 1e-3); // ridge shrinks a hair
}

TEST(Spline, BasisGrowsWithKnots)
{
    std::vector<std::vector<double>> xs;
    std::vector<double> ys;
    Rng rng(6);
    for (int i = 0; i < 200; ++i) {
        xs.push_back({rng.nextDouble(0, 1)});
        ys.push_back(xs.back()[0]);
    }
    SplineOptions three, six;
    three.knots = 3;
    six.knots = 6;
    SplineModel a(three), b(six);
    a.train(xs, ys);
    b.train(xs, ys);
    EXPECT_LT(a.basisSize(), b.basisSize());
}

TEST(SplineDeathTest, RejectsTooFewKnots)
{
    SplineOptions options;
    options.knots = 2;
    EXPECT_DEATH(SplineModel{options}, "three knots");
}

} // namespace
} // namespace acdse
