/**
 * @file
 * Unit tests for the MPSC ingest ring (serve/ring_buffer.hh): FIFO
 * order, capacity rounding, typed rejection when full, slot reuse
 * across laps, and exactly-once delivery under concurrent producers.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "serve/ring_buffer.hh"

namespace acdse
{
namespace
{

TEST(RingBuffer, CapacityRoundsToPowerOfTwo)
{
    EXPECT_EQ(MpscRing<int>(1).capacity(), kMinRingCapacity);
    EXPECT_EQ(MpscRing<int>(8).capacity(), 8u);
    EXPECT_EQ(MpscRing<int>(9).capacity(), 16u);
    EXPECT_EQ(MpscRing<int>(1000).capacity(), 1024u);
}

TEST(RingBuffer, FifoSingleProducer)
{
    MpscRing<int> ring(16);
    for (int i = 0; i < 10; ++i)
        ASSERT_TRUE(ring.tryPush(i));
    EXPECT_EQ(ring.approxSize(), 10u);

    std::vector<int> out(16, -1);
    EXPECT_EQ(ring.popInto(out.data(), out.size()), 10u);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(out[i], i);
    EXPECT_EQ(ring.approxSize(), 0u);
    EXPECT_EQ(ring.popInto(out.data(), out.size()), 0u);
}

TEST(RingBuffer, FullRingRejectsWithoutBlocking)
{
    MpscRing<int> ring(8);
    for (int i = 0; i < 8; ++i)
        ASSERT_TRUE(ring.tryPush(i));
    // The 9th push must fail immediately: load shedding, not queueing.
    EXPECT_FALSE(ring.tryPush(8));
    EXPECT_EQ(ring.approxSize(), 8u);

    int drained;
    ASSERT_EQ(ring.popInto(&drained, 1), 1u);
    EXPECT_EQ(drained, 0);
    // One freed slot re-admits exactly one push.
    EXPECT_TRUE(ring.tryPush(8));
    EXPECT_FALSE(ring.tryPush(9));
}

TEST(RingBuffer, SlotsSurviveManyLaps)
{
    MpscRing<std::uint64_t> ring(8);
    std::uint64_t next = 0;
    std::uint64_t expect = 0;
    std::uint64_t out[3];
    // Push/pop far more values than the capacity so every slot's
    // sequence wraps laps repeatedly.
    for (int round = 0; round < 1000; ++round) {
        ASSERT_TRUE(ring.tryPush(next++));
        ASSERT_TRUE(ring.tryPush(next++));
        const std::size_t n = ring.popInto(out, 3);
        for (std::size_t i = 0; i < n; ++i)
            ASSERT_EQ(out[i], expect++);
    }
    while (expect < next) {
        const std::size_t n = ring.popInto(out, 3);
        ASSERT_GT(n, 0u);
        for (std::size_t i = 0; i < n; ++i)
            ASSERT_EQ(out[i], expect++);
    }
}

TEST(RingBuffer, ConcurrentProducersDeliverExactlyOnce)
{
    constexpr int kProducers = 4;
    constexpr std::uint64_t kPerProducer = 20000;
    MpscRing<std::uint64_t> ring(256);

    // Each producer pushes values tagged with its id in the high bits;
    // the consumer checks per-producer FIFO and exactly-once delivery.
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&ring, p] {
            for (std::uint64_t i = 0; i < kPerProducer;) {
                const std::uint64_t tagged =
                    (static_cast<std::uint64_t>(p) << 32) | i;
                if (ring.tryPush(tagged))
                    ++i;
                else
                    std::this_thread::yield();
            }
        });
    }

    std::vector<std::uint64_t> nextSeen(kProducers, 0);
    std::uint64_t total = 0;
    std::uint64_t out[64];
    while (total < kProducers * kPerProducer) {
        const std::size_t n = ring.popInto(out, 64);
        for (std::size_t i = 0; i < n; ++i) {
            const auto producer =
                static_cast<std::size_t>(out[i] >> 32);
            const std::uint64_t value = out[i] & 0xffffffffu;
            ASSERT_LT(producer, nextSeen.size());
            // Per-producer values arrive in push order, none skipped,
            // none duplicated.
            ASSERT_EQ(value, nextSeen[producer]);
            ++nextSeen[producer];
        }
        total += n;
        if (n == 0)
            std::this_thread::yield();
    }
    for (auto &producer : producers)
        producer.join();
    for (int p = 0; p < kProducers; ++p)
        EXPECT_EQ(nextSeen[p], kPerProducer);
    EXPECT_EQ(ring.popInto(out, 64), 0u);
}

TEST(RingBufferDeathTest, RejectsOversizedCapacity)
{
    EXPECT_DEATH(MpscRing<int>(kMaxRingCapacity * 2), "capacity");
}

} // namespace
} // namespace acdse
