/**
 * @file
 * Unit tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "base/rng.hh"

namespace acdse
{
namespace
{

TEST(Rng, SameSeedSameSequence)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, BoundedStaysInBounds)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.nextBounded(17), 17u);
}

TEST(Rng, BoundedCoversAllValues)
{
    Rng rng(7);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 2000; ++i)
        seen.insert(rng.nextBounded(10));
    EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, RangeIsInclusive)
{
    Rng rng(3);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const std::int64_t v = rng.nextRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(11);
    double sum = 0.0;
    for (int i = 0; i < 20000; ++i) {
        const double d = rng.nextDouble();
        ASSERT_GE(d, 0.0);
        ASSERT_LT(d, 1.0);
        sum += d;
    }
    EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(13);
    const int n = 50000;
    double sum = 0.0, sum_sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double g = rng.nextGaussian();
        sum += g;
        sum_sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.03);
    EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(Rng, GeometricMeanMatches)
{
    Rng rng(17);
    for (double mean : {1.0, 2.5, 10.0, 50.0}) {
        double total = 0.0;
        const int n = 40000;
        for (int i = 0; i < n; ++i) {
            const auto v = rng.nextGeometric(mean);
            ASSERT_GE(v, 1u);
            total += static_cast<double>(v);
        }
        EXPECT_NEAR(total / n, mean, mean * 0.06) << "mean " << mean;
    }
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(19);
    int hits = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        hits += rng.nextBool(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, DiscreteRespectsWeights)
{
    Rng rng(23);
    const std::vector<double> weights{1.0, 0.0, 3.0};
    std::array<int, 3> counts{};
    const int n = 40000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.nextDiscrete(weights)];
    EXPECT_EQ(counts[1], 0);
    EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
    EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(29);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
    auto sorted = v;
    rng.shuffle(v);
    EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), sorted.begin()));
}

TEST(Rng, ShuffleActuallyMoves)
{
    Rng rng(31);
    std::vector<int> v(100);
    for (int i = 0; i < 100; ++i)
        v[i] = i;
    rng.shuffle(v);
    int moved = 0;
    for (int i = 0; i < 100; ++i)
        moved += v[static_cast<std::size_t>(i)] != i;
    EXPECT_GT(moved, 80);
}

TEST(Rng, SplitProducesIndependentStream)
{
    Rng parent(37);
    Rng child = parent.split();
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += parent.next() == child.next();
    EXPECT_LT(same, 3);
}

/** The same seed must produce the same draws for any sampler. */
class RngDeterminism : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RngDeterminism, AllSamplersReproducible)
{
    Rng a(GetParam()), b(GetParam());
    for (int i = 0; i < 200; ++i) {
        EXPECT_EQ(a.nextBounded(1000), b.nextBounded(1000));
        EXPECT_DOUBLE_EQ(a.nextDouble(), b.nextDouble());
        EXPECT_DOUBLE_EQ(a.nextGaussian(), b.nextGaussian());
        EXPECT_EQ(a.nextGeometric(7.0), b.nextGeometric(7.0));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngDeterminism,
                         ::testing::Values(0ULL, 1ULL, 42ULL,
                                           0xdeadbeefULL,
                                           0xffffffffffffffffULL));

} // namespace
} // namespace acdse
