/**
 * @file
 * Tests for the SimPoint- and SMARTS-style sampled-simulation
 * methodologies (paper Section 9.2): both must approximate full
 * simulation while timing only a fraction of the instructions.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "arch/design_space.hh"
#include "base/statistics.hh"
#include "sim/sampled_sim.hh"
#include "sim/simulator.hh"
#include "trace/suites.hh"
#include "trace/trace_generator.hh"

namespace acdse
{
namespace
{

Trace
makeTrace(const std::string &name, std::size_t length)
{
    return TraceGenerator(profileByName(name)).generate(length);
}

double
relError(double estimate, double truth)
{
    return std::abs(estimate - truth) / truth;
}

class SampledSimAccuracy
    : public ::testing::TestWithParam<const char *>
{
};

// At our reduced trace scale, sampled estimates carry visible
// phase-sampling variance (cold-start ramps are a large fraction of a
// 24k-instruction trace). What design-space exploration needs is that
// sampled simulation *ranks configurations* like full simulation and
// lands in the right magnitude band, which is what we assert.

TEST_P(SampledSimAccuracy, SimPointTracksFullSimulation)
{
    const Trace trace = makeTrace(GetParam(), 24000);
    const auto configs = DesignSpace::sampleValidConfigs(6, 77);

    SimPointOptions options;
    options.intervalLength = 2000;
    options.maxClusters = 6;

    std::vector<double> full_cycles, sampled_cycles;
    double worst_rel = 0.0;
    for (const auto &config : configs) {
        const SimulationResult full = simulate(config, trace);
        const SampledResult sampled =
            simulateWithSimPoints(config, trace, options);
        full_cycles.push_back(full.metrics.cycles);
        sampled_cycles.push_back(sampled.metrics.cycles);
        worst_rel = std::max(worst_rel,
                             relError(sampled.metrics.cycles,
                                      full.metrics.cycles));
        EXPECT_LT(sampled.detailFraction, 0.75) << GetParam();
    }
    EXPECT_GT(stats::correlation(sampled_cycles, full_cycles), 0.85)
        << GetParam();
    EXPECT_LT(worst_rel, 0.8) << GetParam();
}

TEST_P(SampledSimAccuracy, SmartsTracksFullSimulation)
{
    const Trace trace = makeTrace(GetParam(), 24000);
    const auto configs = DesignSpace::sampleValidConfigs(6, 78);

    SmartsOptions options;
    options.unitInstructions = 500;
    options.samplingPeriod = 4;

    std::vector<double> full_cycles, sampled_cycles;
    double worst_rel = 0.0;
    for (const auto &config : configs) {
        const SimulationResult full = simulate(config, trace);
        const SampledResult sampled =
            simulateWithSmarts(config, trace, options);
        full_cycles.push_back(full.metrics.cycles);
        sampled_cycles.push_back(sampled.metrics.cycles);
        worst_rel = std::max(worst_rel,
                             relError(sampled.metrics.cycles,
                                      full.metrics.cycles));
        EXPECT_NEAR(sampled.detailFraction, 0.25, 0.05) << GetParam();
    }
    EXPECT_GT(stats::correlation(sampled_cycles, full_cycles), 0.85)
        << GetParam();
    EXPECT_LT(worst_rel, 0.8) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Programs, SampledSimAccuracy,
                         ::testing::Values("gzip", "parser", "galgel",
                                           "crc32"));

TEST(SampledSim, SimPointTimesOnlyRepresentatives)
{
    const Trace trace = makeTrace("gcc", 20000);
    SimPointOptions options;
    options.intervalLength = 1000;
    options.maxClusters = 5;
    const SampledResult sampled = simulateWithSimPoints(
        DesignSpace::baseline(), trace, options);
    // At most 5 representative intervals of 1000 instructions.
    EXPECT_LE(sampled.simulatedInstructions, 5000u);
    EXPECT_GT(sampled.metrics.cycles, 0.0);
}

TEST(SampledSim, SmartsDenserSamplingIsCloser)
{
    const Trace trace = makeTrace("twolf", 24000);
    const MicroarchConfig config = DesignSpace::baseline();
    const SimulationResult full = simulate(config, trace);

    SmartsOptions sparse;
    sparse.samplingPeriod = 12;
    SmartsOptions dense;
    dense.samplingPeriod = 2;
    const double sparse_err = relError(
        simulateWithSmarts(config, trace, sparse).metrics.cycles,
        full.metrics.cycles);
    const double dense_err = relError(
        simulateWithSmarts(config, trace, dense).metrics.cycles,
        full.metrics.cycles);
    // Denser sampling must not be (much) worse.
    EXPECT_LT(dense_err, sparse_err + 0.05);
}

TEST(SampledSim, SmartsOffsetChangesUnits)
{
    const Trace trace = makeTrace("gap", 16000);
    const MicroarchConfig config = DesignSpace::baseline();
    SmartsOptions a, b;
    a.offset = 0;
    b.offset = 3;
    const SampledResult ra = simulateWithSmarts(config, trace, a);
    const SampledResult rb = simulateWithSmarts(config, trace, b);
    EXPECT_NE(ra.metrics.cycles, rb.metrics.cycles);
}

TEST(SampledSimDeathTest, RejectsZeroUnit)
{
    const Trace trace = makeTrace("gap", 2000);
    SmartsOptions options;
    options.unitInstructions = 0;
    EXPECT_DEATH(
        simulateWithSmarts(DesignSpace::baseline(), trace, options),
        "empty measurement unit");
}

} // namespace
} // namespace acdse
