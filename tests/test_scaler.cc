/**
 * @file
 * Unit tests for feature/target standardisation.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "base/rng.hh"
#include "base/statistics.hh"
#include "ml/scaler.hh"

namespace acdse
{
namespace
{

TEST(StandardScaler, TransformsToZeroMeanUnitVariance)
{
    Rng rng(1);
    std::vector<std::vector<double>> samples;
    for (int i = 0; i < 500; ++i) {
        samples.push_back(
            {rng.nextDouble(10, 20), rng.nextGaussian() * 100.0});
    }
    StandardScaler scaler;
    scaler.fit(samples);
    std::vector<double> c0, c1;
    for (const auto &s : samples) {
        const auto z = scaler.transform(s);
        c0.push_back(z[0]);
        c1.push_back(z[1]);
    }
    EXPECT_NEAR(stats::mean(c0), 0.0, 1e-9);
    EXPECT_NEAR(stats::stddev(c0), 1.0, 1e-9);
    EXPECT_NEAR(stats::mean(c1), 0.0, 1e-9);
    EXPECT_NEAR(stats::stddev(c1), 1.0, 1e-9);
}

TEST(StandardScaler, ConstantColumnLeftFinite)
{
    const std::vector<std::vector<double>> samples{{5.0}, {5.0}, {5.0}};
    StandardScaler scaler;
    scaler.fit(samples);
    const auto z = scaler.transform({5.0});
    EXPECT_DOUBLE_EQ(z[0], 0.0);
    const auto z2 = scaler.transform({6.0});
    EXPECT_TRUE(std::isfinite(z2[0]));
}

TEST(StandardScaler, FittedFlagAndDims)
{
    StandardScaler scaler;
    EXPECT_FALSE(scaler.fitted());
    scaler.fit({{1.0, 2.0, 3.0}});
    EXPECT_TRUE(scaler.fitted());
    EXPECT_EQ(scaler.dims(), 3u);
}

TEST(TargetScaler, RoundTrips)
{
    TargetScaler scaler;
    scaler.fit({10.0, 20.0, 30.0});
    for (double y : {5.0, 17.3, 42.0})
        EXPECT_NEAR(scaler.unscale(scaler.scale(y)), y, 1e-12);
}

TEST(TargetScaler, CentersTrainingData)
{
    TargetScaler scaler;
    scaler.fit({10.0, 20.0, 30.0});
    EXPECT_NEAR(scaler.scale(20.0), 0.0, 1e-12);
    EXPECT_GT(scaler.scale(30.0), 0.0);
    EXPECT_LT(scaler.scale(10.0), 0.0);
}

TEST(StandardScalerDeathTest, DimensionMismatch)
{
    StandardScaler scaler;
    scaler.fit({{1.0, 2.0}});
    EXPECT_DEATH(scaler.transform({1.0}), "mismatch");
}

} // namespace
} // namespace acdse
