/**
 * @file
 * Unit tests for the refinement pass (explore/refine.hh) -- the
 * successor of the retired core/search scalar sweep. Hill climbing is
 * exercised through analytic batch scorers with known optima; the
 * predictor-backed scorer is covered in test_explore.cc.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "arch/design_space.hh"
#include "explore/refine.hh"

namespace acdse
{
namespace
{

using explore::BatchScorer;
using explore::ScoredConfig;
using explore::validNeighbours;

/** A smooth objective with a known optimum (max width, max ROB...). */
double
knownObjective(const MicroarchConfig &config)
{
    // Minimised by width=8, rob=160, l2=4096, bpred=32.
    return 1000.0 / config.width() + 10000.0 / config.robSize() +
           4000.0 / std::log2(static_cast<double>(config.l2Bytes())) +
           300.0 / std::log2(static_cast<double>(config.bpredEntries()));
}

/** The analytic objective as a batch scorer. */
BatchScorer
knownScorer()
{
    return [](std::span<const MicroarchConfig> configs,
              std::span<double> out) {
        for (std::size_t i = 0; i < configs.size(); ++i)
            out[i] = knownObjective(configs[i]);
    };
}

/** Seeds from a deterministic sample, with scores left unset (the
 * refinement recomputes them through the scorer). */
std::vector<ScoredConfig>
sampledSeeds(std::size_t count, std::uint64_t seed)
{
    std::vector<ScoredConfig> seeds;
    for (const auto &config :
         DesignSpace::sampleValidConfigs(count, seed))
        seeds.push_back({config, 0.0});
    return seeds;
}

TEST(Refine, NeighboursDifferInOneParameter)
{
    const MicroarchConfig base = DesignSpace::baseline();
    const auto neighbours = validNeighbours(base);
    EXPECT_GE(neighbours.size(), 10u);
    for (const auto &n : neighbours) {
        EXPECT_TRUE(DesignSpace::isValid(n));
        int diffs = 0;
        for (std::size_t i = 0; i < kNumParams; ++i)
            diffs += n.raw()[i] != base.raw()[i];
        EXPECT_EQ(diffs, 1);
    }
}

TEST(Refine, NeighboursRespectValueBounds)
{
    // A corner configuration (everything at minimum) has only upward
    // neighbours.
    std::array<int, kNumParams> values;
    for (std::size_t i = 0; i < kNumParams; ++i)
        values[i] = paramSpecs()[i].min();
    const MicroarchConfig corner{values};
    ASSERT_TRUE(DesignSpace::isValid(corner));
    for (const auto &n : validNeighbours(corner)) {
        for (std::size_t i = 0; i < kNumParams; ++i)
            EXPECT_GE(n.raw()[i], corner.raw()[i]);
    }
}

TEST(Refine, FindsKnownOptimumRegion)
{
    const auto best =
        explore::refine(knownScorer(), sampledSeeds(4, 0x5eed));
    ASSERT_FALSE(best.empty());
    // Hill climbing on a monotone objective must land on the corner.
    EXPECT_EQ(best.front().config.width(), 8);
    EXPECT_EQ(best.front().config.robSize(), 160);
    EXPECT_EQ(best.front().config.get(Param::L2Size), 4096);
}

TEST(Refine, ResultsSortedAndDistinct)
{
    const auto best =
        explore::refine(knownScorer(), sampledSeeds(8, 0x5eed));
    ASSERT_FALSE(best.empty());
    for (std::size_t i = 1; i < best.size(); ++i) {
        EXPECT_LE(best[i - 1].predicted, best[i].predicted);
        EXPECT_NE(best[i - 1].config.key(), best[i].config.key());
    }
}

TEST(Refine, ClimbingImprovesOnSeeds)
{
    // The best climbed score can never be worse than any seed's own
    // score (climbing starts there and only moves on strict
    // improvement).
    const auto seeds = sampledSeeds(4, 0xc11fb);
    explore::RefineOptions options;
    options.maxSteps = 0; // scoring only, no climbing
    const auto unclimbed =
        explore::refine(knownScorer(), seeds, options);
    options.maxSteps = 64;
    const auto climbed = explore::refine(knownScorer(), seeds, options);
    ASSERT_FALSE(unclimbed.empty());
    ASSERT_FALSE(climbed.empty());
    EXPECT_LE(climbed.front().predicted, unclimbed.front().predicted);
    // With no steps the result is exactly the scored seeds.
    EXPECT_EQ(unclimbed.size(), seeds.size());
    for (const auto &entry : unclimbed)
        EXPECT_EQ(entry.predicted, knownObjective(entry.config));
}

TEST(Refine, SeedOrderDoesNotChangeResult)
{
    auto seeds = sampledSeeds(6, 0xabc);
    const auto forward = explore::refine(knownScorer(), seeds);
    std::reverse(seeds.begin(), seeds.end());
    const auto backward = explore::refine(knownScorer(), seeds);
    ASSERT_EQ(forward.size(), backward.size());
    for (std::size_t i = 0; i < forward.size(); ++i) {
        EXPECT_EQ(forward[i].config, backward[i].config);
        EXPECT_EQ(forward[i].predicted, backward[i].predicted);
    }
}

} // namespace
} // namespace acdse
