/**
 * @file
 * Unit tests for predictor-guided design-space search.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "arch/design_space.hh"
#include "core/search.hh"

namespace acdse
{
namespace
{

/** A smooth objective with a known optimum (max width, max ROB...). */
double
knownObjective(const MicroarchConfig &config)
{
    // Minimised by width=8, rob=160, l2=4096, bpred=32.
    return 1000.0 / config.width() + 10000.0 / config.robSize() +
           4000.0 / std::log2(static_cast<double>(config.l2Bytes())) +
           300.0 / std::log2(static_cast<double>(config.bpredEntries()));
}

TEST(Search, NeighboursDifferInOneParameter)
{
    const MicroarchConfig base = DesignSpace::baseline();
    const auto neighbours = validNeighbours(base);
    EXPECT_GE(neighbours.size(), 10u);
    for (const auto &n : neighbours) {
        EXPECT_TRUE(DesignSpace::isValid(n));
        int diffs = 0;
        for (std::size_t i = 0; i < kNumParams; ++i)
            diffs += n.raw()[i] != base.raw()[i];
        EXPECT_EQ(diffs, 1);
    }
}

TEST(Search, NeighboursRespectValueBounds)
{
    // A corner configuration (everything at minimum) has only upward
    // neighbours.
    std::array<int, kNumParams> values;
    for (std::size_t i = 0; i < kNumParams; ++i)
        values[i] = paramSpecs()[i].min();
    const MicroarchConfig corner{values};
    ASSERT_TRUE(DesignSpace::isValid(corner));
    for (const auto &n : validNeighbours(corner)) {
        for (std::size_t i = 0; i < kNumParams; ++i)
            EXPECT_GE(n.raw()[i], corner.raw()[i]);
    }
}

TEST(Search, FindsKnownOptimumRegion)
{
    SearchOptions options;
    options.sweepSize = 512;
    options.keepTop = 4;
    const auto best = findBestPredicted(knownObjective, options);
    ASSERT_FALSE(best.empty());
    // Hill climbing on a monotone objective must land on the corner.
    EXPECT_EQ(best.front().config.width(), 8);
    EXPECT_EQ(best.front().config.robSize(), 160);
    EXPECT_EQ(best.front().config.get(Param::L2Size), 4096);
}

TEST(Search, ResultsSortedAndDistinct)
{
    SearchOptions options;
    options.sweepSize = 256;
    options.keepTop = 8;
    const auto best = findBestPredicted(knownObjective, options);
    for (std::size_t i = 1; i < best.size(); ++i) {
        EXPECT_LE(best[i - 1].predicted, best[i].predicted);
        EXPECT_NE(best[i - 1].config.key(), best[i].config.key());
    }
}

TEST(Search, ClimbingImprovesOnSweep)
{
    // The best climbed score can never be worse than the best sweep
    // score (climbing starts from it).
    SearchOptions options;
    options.sweepSize = 128;
    options.keepTop = 2;
    options.maxClimbSteps = 0; // sweep only
    const auto sweep_only = findBestPredicted(knownObjective, options);
    options.maxClimbSteps = 64;
    const auto climbed = findBestPredicted(knownObjective, options);
    EXPECT_LE(climbed.front().predicted, sweep_only.front().predicted);
}

TEST(Search, DeterministicForFixedSeed)
{
    SearchOptions options;
    options.sweepSize = 128;
    const auto a = findBestPredicted(knownObjective, options);
    const auto b = findBestPredicted(knownObjective, options);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(a.front().config, b.front().config);
}

TEST(Search, ParetoFrontierIsNonDominated)
{
    // Two conflicting objectives: performance wants width, "energy"
    // penalises it.
    auto perf = [](const MicroarchConfig &c) {
        return 100.0 / c.width() + 2000.0 / c.robSize();
    };
    auto energy = [](const MicroarchConfig &c) {
        return 10.0 * c.width() +
               0.001 * static_cast<double>(c.l2Bytes()) / 1024.0;
    };
    const auto frontier = predictedParetoFrontier(perf, energy, 1024);
    ASSERT_GE(frontier.size(), 2u);
    // Along the frontier, objective A rises implies B falls.
    double prev_a = -std::numeric_limits<double>::infinity();
    double prev_b = std::numeric_limits<double>::infinity();
    for (const auto &config : frontier) {
        const double a = perf(config);
        const double b = energy(config);
        EXPECT_GE(a, prev_a);
        EXPECT_LT(b, prev_b);
        prev_a = a;
        prev_b = b;
    }
    // The extremes of the frontier differ in width.
    EXPECT_GT(frontier.front().width(), frontier.back().width());
}

} // namespace
} // namespace acdse
