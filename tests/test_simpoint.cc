/**
 * @file
 * Unit tests for the SimPoint phase analysis.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "trace/simpoint.hh"
#include "trace/suites.hh"
#include "trace/trace_generator.hh"

namespace acdse
{
namespace
{

/** A trace with two starkly different phases (A-blocks then B-blocks). */
Trace
twoPhaseTrace(std::size_t length)
{
    std::vector<TraceInstruction> insts;
    for (std::size_t i = 0; i < length; ++i) {
        TraceInstruction inst{};
        const bool phase_b = i >= length / 2;
        const std::uint64_t base = phase_b ? 0x500000 : 0x400000;
        inst.pc = base + 4 * (i % 16);
        if (i % 16 == 15) {
            inst.cls = InstClass::Branch;
            inst.conditional = true;
            inst.taken = true;
            inst.target = base;
        } else {
            inst.cls = phase_b ? InstClass::FpAlu : InstClass::IntAlu;
        }
        insts.push_back(inst);
    }
    return Trace("two-phase", std::move(insts));
}

TEST(SimPoint, WeightsSumToOne)
{
    const Trace t = TraceGenerator(profileByName("gzip")).generate(16000);
    const SimPointResult result = simpointAnalyze(t);
    double total = 0.0;
    for (const auto &point : result.points)
        total += point.weight;
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(SimPoint, IndicesInRange)
{
    const Trace t = TraceGenerator(profileByName("fft")).generate(9000);
    SimPointOptions options;
    options.intervalLength = 1000;
    const SimPointResult result = simpointAnalyze(t, options);
    EXPECT_EQ(result.numIntervals, 9u);
    for (const auto &point : result.points)
        EXPECT_LT(point.intervalIndex, result.numIntervals);
}

TEST(SimPoint, AtMostMaxClusters)
{
    const Trace t = TraceGenerator(profileByName("gcc")).generate(20000);
    SimPointOptions options;
    options.intervalLength = 500;
    options.maxClusters = 7;
    const SimPointResult result = simpointAnalyze(t, options);
    EXPECT_LE(result.points.size(), 7u);
    EXPECT_GE(result.points.size(), 1u);
}

TEST(SimPoint, TwoPhasesPickRepresentativesFromBoth)
{
    const Trace t = twoPhaseTrace(16000);
    SimPointOptions options;
    options.intervalLength = 1000;
    options.maxClusters = 2;
    const SimPointResult result = simpointAnalyze(t, options);
    ASSERT_EQ(result.points.size(), 2u);
    // One representative from each half, each with ~half the weight.
    const bool covers_both =
        (result.points[0].intervalIndex < 8) !=
        (result.points[1].intervalIndex < 8);
    EXPECT_TRUE(covers_both);
    EXPECT_NEAR(result.points[0].weight, 0.5, 0.01);
}

TEST(SimPoint, WeightedSumReconstructsUniformMetric)
{
    const Trace t = twoPhaseTrace(8000);
    SimPointOptions options;
    options.intervalLength = 1000;
    const SimPointResult result = simpointAnalyze(t, options);
    // If every interval has value v, the estimate is v * numIntervals.
    std::vector<double> per_interval(result.numIntervals, 3.0);
    EXPECT_NEAR(simpointWeightedSum(result, per_interval),
                3.0 * static_cast<double>(result.numIntervals), 1e-9);
}

TEST(SimPoint, WeightedSumTracksPhaseMix)
{
    const Trace t = twoPhaseTrace(16000);
    SimPointOptions options;
    options.intervalLength = 1000;
    options.maxClusters = 2;
    const SimPointResult result = simpointAnalyze(t, options);
    // Phase A intervals "cost" 10, phase B intervals 20: the estimate
    // must land at the true total of 16 intervals * 15 average.
    std::vector<double> per_interval(result.numIntervals);
    for (std::size_t i = 0; i < per_interval.size(); ++i)
        per_interval[i] = i < 8 ? 10.0 : 20.0;
    EXPECT_NEAR(simpointWeightedSum(result, per_interval), 240.0, 1.0);
}

TEST(SimPoint, DeterministicForFixedSeed)
{
    const Trace t = TraceGenerator(profileByName("lame")).generate(12000);
    const SimPointResult a = simpointAnalyze(t);
    const SimPointResult b = simpointAnalyze(t);
    ASSERT_EQ(a.points.size(), b.points.size());
    for (std::size_t i = 0; i < a.points.size(); ++i) {
        EXPECT_EQ(a.points[i].intervalIndex, b.points[i].intervalIndex);
        EXPECT_DOUBLE_EQ(a.points[i].weight, b.points[i].weight);
    }
}

} // namespace
} // namespace acdse
