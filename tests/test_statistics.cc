/**
 * @file
 * Unit tests for descriptive statistics (rmae and correlation are the
 * paper's two quality measures, so they get exact-value checks).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "base/rng.hh"
#include "base/statistics.hh"

namespace acdse
{
namespace
{

using stats::RunningStats;

TEST(Statistics, MeanAndVariance)
{
    const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    EXPECT_DOUBLE_EQ(stats::mean(xs), 5.0);
    EXPECT_DOUBLE_EQ(stats::variance(xs), 4.0);
    EXPECT_DOUBLE_EQ(stats::stddev(xs), 2.0);
}

TEST(Statistics, EmptyAndSingleton)
{
    EXPECT_DOUBLE_EQ(stats::mean({}), 0.0);
    const std::vector<double> one{3.0};
    EXPECT_DOUBLE_EQ(stats::mean(one), 3.0);
    EXPECT_DOUBLE_EQ(stats::variance(one), 0.0);
}

TEST(Statistics, PerfectPositiveCorrelation)
{
    const std::vector<double> xs{1, 2, 3, 4, 5};
    const std::vector<double> ys{10, 20, 30, 40, 50};
    EXPECT_NEAR(stats::correlation(xs, ys), 1.0, 1e-12);
}

TEST(Statistics, PerfectNegativeCorrelation)
{
    const std::vector<double> xs{1, 2, 3, 4};
    const std::vector<double> ys{8, 6, 4, 2};
    EXPECT_NEAR(stats::correlation(xs, ys), -1.0, 1e-12);
}

TEST(Statistics, ConstantSeriesHasZeroCorrelation)
{
    const std::vector<double> xs{1, 2, 3};
    const std::vector<double> ys{5, 5, 5};
    EXPECT_DOUBLE_EQ(stats::correlation(xs, ys), 0.0);
}

TEST(Statistics, CorrelationIsScaleInvariant)
{
    Rng rng(5);
    std::vector<double> xs, ys;
    for (int i = 0; i < 200; ++i) {
        xs.push_back(rng.nextGaussian());
        ys.push_back(0.7 * xs.back() + 0.3 * rng.nextGaussian());
    }
    const double base = stats::correlation(xs, ys);
    std::vector<double> scaled = ys;
    for (double &y : scaled)
        y = 1000.0 + 42.0 * y;
    EXPECT_NEAR(stats::correlation(xs, scaled), base, 1e-9);
}

TEST(Statistics, RmaeExactValue)
{
    // |110-100|/100 and |90-100|/100 -> both 10%.
    const std::vector<double> pred{110.0, 90.0};
    const std::vector<double> actual{100.0, 100.0};
    EXPECT_DOUBLE_EQ(stats::rmae(pred, actual), 10.0);
}

TEST(Statistics, RmaeSkipsZeroActuals)
{
    const std::vector<double> pred{5.0, 110.0};
    const std::vector<double> actual{0.0, 100.0};
    EXPECT_DOUBLE_EQ(stats::rmae(pred, actual), 10.0);
}

TEST(Statistics, RmaeDoublingIsHundredPercent)
{
    // "an rmae of 100 percent would mean the model predicts a value
    //  double the actual value" (paper Section 6.1).
    const std::vector<double> pred{200.0};
    const std::vector<double> actual{100.0};
    EXPECT_DOUBLE_EQ(stats::rmae(pred, actual), 100.0);
}

TEST(Statistics, QuantilesAndFiveNumber)
{
    const std::vector<double> xs{1, 2, 3, 4, 5, 6, 7, 8, 9};
    EXPECT_DOUBLE_EQ(stats::quantile(xs, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(stats::quantile(xs, 0.5), 5.0);
    EXPECT_DOUBLE_EQ(stats::quantile(xs, 1.0), 9.0);
    const auto s = stats::fiveNumberSummary(xs);
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.q25, 3.0);
    EXPECT_DOUBLE_EQ(s.median, 5.0);
    EXPECT_DOUBLE_EQ(s.q75, 7.0);
    EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(Statistics, QuantileInterpolates)
{
    const std::vector<double> xs{0.0, 10.0};
    EXPECT_DOUBLE_EQ(stats::quantile(xs, 0.25), 2.5);
}

TEST(Statistics, QuantileUnsortedInput)
{
    const std::vector<double> xs{9, 1, 5, 3, 7};
    EXPECT_DOUBLE_EQ(stats::quantile(xs, 0.5), 5.0);
}

TEST(Statistics, RunningMatchesBatch)
{
    Rng rng(77);
    std::vector<double> xs;
    RunningStats running;
    for (int i = 0; i < 1000; ++i) {
        xs.push_back(rng.nextDouble(-5.0, 12.0));
        running.add(xs.back());
    }
    EXPECT_NEAR(running.mean(), stats::mean(xs), 1e-9);
    EXPECT_NEAR(running.variance(), stats::variance(xs), 1e-9);
    EXPECT_DOUBLE_EQ(running.min(),
                     *std::min_element(xs.begin(), xs.end()));
    EXPECT_DOUBLE_EQ(running.max(),
                     *std::max_element(xs.begin(), xs.end()));
    EXPECT_EQ(running.count(), xs.size());
}

TEST(Statistics, EuclideanDistance)
{
    const std::vector<double> a{0.0, 3.0};
    const std::vector<double> b{4.0, 0.0};
    EXPECT_DOUBLE_EQ(stats::euclideanDistance(a, b), 5.0);
    EXPECT_DOUBLE_EQ(stats::euclideanDistance(a, a), 0.0);
}

/** Covariance of independent standard samples is near zero. */
TEST(Statistics, IndependentSamplesUncorrelated)
{
    Rng rng(123);
    std::vector<double> xs, ys;
    for (int i = 0; i < 20000; ++i) {
        xs.push_back(rng.nextGaussian());
        ys.push_back(rng.nextGaussian());
    }
    EXPECT_NEAR(stats::correlation(xs, ys), 0.0, 0.03);
}

} // namespace
} // namespace acdse
