/**
 * @file
 * Calibration property tests for the benchmark-suite profiles: the
 * qualitative relationships the paper's analysis depends on must be
 * built into the profiles (DESIGN.md Section 2).
 */

#include <gtest/gtest.h>

#include "arch/parameter.hh"
#include "trace/suites.hh"

namespace acdse
{
namespace
{

TEST(SuiteCalibration, ArtAndMcfExceedEveryL2)
{
    // The paper's two outliers must be able to defeat the largest L2
    // in the design space (4MB).
    const int max_l2_kb = paramSpec(Param::L2Size).max();
    EXPECT_GT(profileByName("art").dataFootprintKb, max_l2_kb * 0.75);
    EXPECT_GT(profileByName("mcf").dataFootprintKb, max_l2_kb * 0.5);
}

TEST(SuiteCalibration, McfIsThePointerChaser)
{
    const double mcf = profileByName("mcf").pointerChaseFraction;
    EXPECT_GT(mcf, 0.25);
    for (const char *name : {"gzip", "swim", "art", "crafty"})
        EXPECT_LT(profileByName(name).pointerChaseFraction, mcf)
            << name;
}

TEST(SuiteCalibration, ParserIsSmallAndSerial)
{
    // parser's space varies only slightly (paper Section 4.1): small,
    // cache-resident working set and short dependence chains.
    const ProgramProfile &p = profileByName("parser");
    EXPECT_LE(p.dataFootprintKb, 32.0);
    EXPECT_LE(p.meanDepDistance, 5.0);
    // Its hot region fits even the smallest L1D (8KB) after halving.
    EXPECT_LE(p.hotRegionKb, 16.0);
}

TEST(SuiteCalibration, FpProgramsHaveMoreIlpThanIntPrograms)
{
    double fp_total = 0.0, int_total = 0.0;
    int fp_n = 0, int_n = 0;
    for (const auto &p : specCpu2000Profiles()) {
        if (p.wFpAlu > 0.5) {
            fp_total += p.meanDepDistance;
            ++fp_n;
        } else {
            int_total += p.meanDepDistance;
            ++int_n;
        }
    }
    ASSERT_GT(fp_n, 5);
    ASSERT_GT(int_n, 5);
    EXPECT_GT(fp_total / fp_n, int_total / int_n + 3.0);
}

TEST(SuiteCalibration, MiBenchIsEmbeddedScale)
{
    // MiBench code and data footprints must be smaller on average than
    // SPEC's (embedded programs).
    auto means = [](Suite suite) {
        double code = 0.0, data = 0.0;
        int n = 0;
        for (const auto &p : allProfiles()) {
            if (p.suite != suite)
                continue;
            code += p.codeFootprintKb;
            data += p.dataFootprintKb;
            ++n;
        }
        return std::pair<double, double>{code / n, data / n};
    };
    const auto spec = means(Suite::SpecCpu2000);
    const auto mibench = means(Suite::MiBench);
    EXPECT_LT(mibench.first, spec.first);
    EXPECT_LT(mibench.second, spec.second);
}

TEST(SuiteCalibration, CodeHeavyProgramsStressTheIcacheRange)
{
    // gcc/vortex must exceed the largest L1I (128KB); small kernels
    // must fit the smallest (8KB).
    const int max_il1 = paramSpec(Param::Il1Size).max();
    EXPECT_GT(profileByName("gcc").codeFootprintKb, max_il1);
    EXPECT_GT(profileByName("vortex").codeFootprintKb, max_il1);
    EXPECT_LE(profileByName("crc32").codeFootprintKb, 8.0);
    EXPECT_LE(profileByName("adpcm").codeFootprintKb, 8.0);
}

TEST(SuiteCalibration, BranchPredictabilitySpansEasyToHard)
{
    // crafty and qsort are the hard-branch programs; crc32/swim easy.
    EXPECT_LT(profileByName("crafty").branchPredictability, 0.8);
    EXPECT_LT(profileByName("qsort").branchPredictability, 0.75);
    EXPECT_GT(profileByName("crc32").branchPredictability, 0.95);
    EXPECT_GT(profileByName("swim").branchPredictability, 0.95);
}

TEST(SuiteCalibration, EveryProfileIsInternallyConsistent)
{
    for (const auto &p : allProfiles()) {
        EXPECT_GT(p.branchFraction, 0.0) << p.name;
        EXPECT_LT(p.branchFraction, 0.5) << p.name;
        EXPECT_GE(p.hotRegionKb, 1.0) << p.name;
        EXPECT_LE(p.hotRegionKb, p.dataFootprintKb) << p.name;
        EXPECT_GE(p.probHot, 0.0) << p.name;
        EXPECT_LE(p.probHot, 1.0) << p.name;
        // probHot and probStream are sequential thresholds in the
        // generator (the stream share is min(probStream, 1 - probHot)),
        // so a slight overshoot only truncates the stream share.
        EXPECT_LE(p.probHot + p.probStream, 1.0 + 1e-9) << p.name;
        EXPECT_GE(p.meanDepDistance, 1.0) << p.name;
        EXPECT_NE(p.seed, 0u) << p.name;
    }
}

TEST(SuiteCalibration, SeedsAreUniquePerProgram)
{
    std::set<std::uint64_t> seeds;
    for (const auto &p : allProfiles())
        EXPECT_TRUE(seeds.insert(p.seed).second) << p.name;
}

} // namespace
} // namespace acdse
