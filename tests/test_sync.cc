/**
 * @file
 * Runtime behaviour of the annotated synchronisation wrappers
 * (base/sync.hh): mutual exclusion, condition-variable wakeups,
 * reader/writer semantics and tryLock. The *compile-time* guarantees
 * (unguarded access is rejected under Clang) are covered by the
 * negative-compile suite in tests/negative_compile/; these tests prove
 * the wrappers still behave like the std primitives they hold, on
 * every compiler, and give TSan real concurrency to watch.
 */

#include "base/sync.hh"

#include <atomic>
#include <deque>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace acdse
{
namespace
{

TEST(Sync, MutexLockProvidesMutualExclusion)
{
    struct Guarded
    {
        Mutex mutex;
        long counter ACDSE_GUARDED_BY(mutex) = 0;
        bool inCritical ACDSE_GUARDED_BY(mutex) = false;
    } state;

    constexpr int kThreads = 8;
    constexpr long kPerThread = 2000;
    std::atomic<bool> overlapped{false};

    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&state, &overlapped] {
            for (long i = 0; i < kPerThread; ++i) {
                MutexLock lock(state.mutex);
                if (state.inCritical)
                    overlapped.store(true);
                state.inCritical = true;
                ++state.counter;
                state.inCritical = false;
            }
        });
    }
    for (auto &thread : threads)
        thread.join();

    EXPECT_FALSE(overlapped.load());
    MutexLock lock(state.mutex);
    EXPECT_EQ(state.counter, kThreads * kPerThread);
}

TEST(Sync, CondVarWakesWaitersAcrossThreads)
{
    struct Channel
    {
        Mutex mutex;
        CondVar cv;
        std::deque<int> items ACDSE_GUARDED_BY(mutex);
        bool closed ACDSE_GUARDED_BY(mutex) = false;
    } channel;

    constexpr int kItems = 500;
    long consumedSum = 0;

    std::thread consumer([&channel, &consumedSum] {
        for (;;) {
            MutexLock lock(channel.mutex);
            // Explicit predicate loop: sync.hh has no predicate-lambda
            // wait on purpose (the analysis cannot see into lambdas).
            while (channel.items.empty() && !channel.closed)
                channel.cv.wait(channel.mutex);
            if (channel.items.empty())
                return; // closed and drained
            consumedSum += channel.items.front();
            channel.items.pop_front();
        }
    });

    for (int i = 1; i <= kItems; ++i) {
        MutexLock lock(channel.mutex);
        channel.items.push_back(i);
        channel.cv.notifyOne();
    }
    {
        MutexLock lock(channel.mutex);
        channel.closed = true;
        channel.cv.notifyAll();
    }
    consumer.join();

    EXPECT_EQ(consumedSum, static_cast<long>(kItems) * (kItems + 1) / 2);
}

TEST(Sync, SharedMutexAllowsReadersExcludesWriters)
{
    struct Guarded
    {
        SharedMutex mutex;
        long value ACDSE_GUARDED_BY(mutex) = 0;
    } state;

    constexpr int kWriters = 4;
    constexpr int kReaders = 4;
    constexpr long kWrites = 1000;
    std::atomic<bool> wentBackwards{false};

    std::vector<std::thread> threads;
    threads.reserve(kWriters + kReaders);
    for (int w = 0; w < kWriters; ++w) {
        threads.emplace_back([&state] {
            for (long i = 0; i < kWrites; ++i) {
                WriterLock lock(state.mutex);
                ++state.value;
            }
        });
    }
    for (int r = 0; r < kReaders; ++r) {
        threads.emplace_back([&state, &wentBackwards] {
            long last = 0;
            for (long i = 0; i < kWrites; ++i) {
                ReaderLock lock(state.mutex);
                // Writers only increment, so a reader can never
                // observe the value moving backwards.
                if (state.value < last)
                    wentBackwards.store(true);
                last = state.value;
            }
        });
    }
    for (auto &thread : threads)
        thread.join();

    EXPECT_FALSE(wentBackwards.load());
    WriterLock lock(state.mutex);
    EXPECT_EQ(state.value, kWriters * kWrites);
}

TEST(Sync, TryLockFailsWhileHeldAndSucceedsAfterRelease)
{
    Mutex mutex;
    std::atomic<bool> lockedWhileHeld{true};
    std::atomic<bool> lockedAfterRelease{false};

    mutex.lock();
    std::thread contender([&mutex, &lockedWhileHeld] {
        if (mutex.tryLock()) {
            lockedWhileHeld.store(true);
            mutex.unlock();
        } else {
            lockedWhileHeld.store(false);
        }
    });
    contender.join();
    mutex.unlock();

    std::thread retry([&mutex, &lockedAfterRelease] {
        if (mutex.tryLock()) {
            lockedAfterRelease.store(true);
            mutex.unlock();
        }
    });
    retry.join();

    EXPECT_FALSE(lockedWhileHeld.load());
    EXPECT_TRUE(lockedAfterRelease.load());
}

} // namespace
} // namespace acdse
