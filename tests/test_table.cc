/**
 * @file
 * Unit tests for the aligned table printer.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "base/table.hh"

namespace acdse
{
namespace
{

TEST(Table, AlignsColumns)
{
    Table t({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"longer-name", "22"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer-name"), std::string::npos);
    // Every line must start the second column at the same offset.
    std::istringstream lines(out);
    std::string header, rule, row1, row2;
    std::getline(lines, header);
    std::getline(lines, rule);
    std::getline(lines, row1);
    std::getline(lines, row2);
    EXPECT_EQ(header.find("value"), row2.find("22"));
}

TEST(Table, NumberFormatting)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::num(3.0, 0), "3");
    EXPECT_EQ(Table::num(static_cast<long long>(1234567)), "1234567");
    EXPECT_EQ(Table::num(-0.5, 1), "-0.5");
}

TEST(Table, RowCount)
{
    Table t({"x"});
    EXPECT_EQ(t.rowCount(), 0u);
    t.addRow({"1"});
    t.addRow({"2"});
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(TableDeathTest, RejectsWrongWidth)
{
    Table t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "row width");
}

} // namespace
} // namespace acdse
