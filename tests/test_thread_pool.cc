/**
 * @file
 * Unit tests for the shared work scheduler (base/thread_pool): full
 * index coverage, exception propagation, the documented nested-call
 * semantics (inline serialisation), empty/single ranges, the sizing
 * rule, and teardown with queued work.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <latch>
#include <stdexcept>
#include <thread>
#include <vector>

#include "base/thread_pool.hh"

namespace acdse
{
namespace
{

TEST(ThreadPool, SizingRuleCountsWorkersAndCaller)
{
    ThreadPool one(1);
    EXPECT_EQ(one.threads(), 1u);
    EXPECT_EQ(one.workers(), 0u);

    ThreadPool four(4);
    EXPECT_EQ(four.threads(), 4u);
    EXPECT_EQ(four.workers(), 3u);
}

TEST(ThreadPool, ResolveHonoursExplicitRequest)
{
    EXPECT_EQ(ThreadPool::resolveThreads(7), 7u);
    EXPECT_GE(ThreadPool::resolveThreads(0), 1u);
    EXPECT_GE(ThreadPool::defaultThreads(), 1u);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallelFor(
        0, hits.size(),
        [&](std::size_t i) { hits[i].fetch_add(1); },
        /*grain=*/3);
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ParallelForHonoursOffsetRange)
{
    ThreadPool pool(3);
    std::atomic<std::size_t> sum{0};
    pool.parallelFor(10, 20, [&](std::size_t i) { sum += i; });
    EXPECT_EQ(sum.load(), 145u); // 10 + 11 + ... + 19
}

TEST(ThreadPool, ZeroTaskParallelForIsANoOp)
{
    ThreadPool pool(4);
    bool touched = false;
    pool.parallelFor(0, 0, [&](std::size_t) { touched = true; });
    pool.parallelFor(5, 5, [&](std::size_t) { touched = true; });
    EXPECT_FALSE(touched);
}

TEST(ThreadPool, SingleTaskRunsInlineOnTheCaller)
{
    ThreadPool pool(4);
    std::thread::id ran_on;
    pool.parallelFor(3, 4, [&](std::size_t i) {
        EXPECT_EQ(i, 3u);
        ran_on = std::this_thread::get_id();
    });
    EXPECT_EQ(ran_on, std::this_thread::get_id());
}

TEST(ThreadPool, SingleThreadPoolRunsEverythingInline)
{
    ThreadPool pool(1);
    std::thread::id caller = std::this_thread::get_id();
    std::size_t count = 0; // no atomics needed: everything is inline
    pool.parallelFor(0, 50, [&](std::size_t) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        ++count;
    });
    EXPECT_EQ(count, 50u);
}

TEST(ThreadPool, ExceptionFromWorkerPropagatesToCaller)
{
    ThreadPool pool(4);
    try {
        pool.parallelFor(0, 100, [&](std::size_t i) {
            if (i == 17)
                throw std::runtime_error("task 17 failed");
        });
        FAIL() << "expected the task exception to be rethrown";
    } catch (const std::runtime_error &error) {
        EXPECT_STREQ(error.what(), "task 17 failed");
    }

    // The pool survives a throwing loop and stays usable.
    std::atomic<std::size_t> sum{0};
    pool.parallelFor(0, 10, [&](std::size_t i) { sum += i; });
    EXPECT_EQ(sum.load(), 45u);
}

TEST(ThreadPool, NestedParallelForRunsInlineOnTheOuterWorker)
{
    // Documented nesting semantics: an inner parallelFor issued from
    // inside a pool task runs serially on that same thread -- the
    // outer loop owns the parallelism and no nesting can deadlock.
    ThreadPool pool(4);
    std::atomic<std::size_t> total{0};
    pool.parallelFor(0, 8, [&](std::size_t) {
        const std::thread::id outer = std::this_thread::get_id();
        std::size_t inner_sum = 0;
        pool.parallelFor(0, 16, [&](std::size_t j) {
            EXPECT_EQ(std::this_thread::get_id(), outer);
            inner_sum += j;
        });
        EXPECT_EQ(inner_sum, 120u);
        total += inner_sum;
    });
    EXPECT_EQ(total.load(), 8u * 120u);
}

TEST(ThreadPool, NestedCallsAcrossPoolsAlsoSerialise)
{
    // Same rule across distinct pools: any pool worker runs any
    // parallelFor inline, so pools never amplify each other.
    ThreadPool outer(3);
    ThreadPool inner(3);
    std::atomic<std::size_t> sum{0};
    outer.parallelFor(0, 4, [&](std::size_t) {
        const std::thread::id id = std::this_thread::get_id();
        inner.parallelFor(0, 4, [&](std::size_t j) {
            EXPECT_EQ(std::this_thread::get_id(), id);
            sum += j;
        });
    });
    EXPECT_EQ(sum.load(), 4u * 6u);
}

TEST(ThreadPool, SubmitReturnsValueThroughFuture)
{
    ThreadPool pool(2);
    auto future = pool.submit([] { return 6 * 7; });
    EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesExceptionThroughFuture)
{
    ThreadPool pool(2);
    auto future = pool.submit(
        []() -> int { throw std::logic_error("submitted failure"); });
    EXPECT_THROW(future.get(), std::logic_error);
}

TEST(ThreadPool, SubmitOnSingleThreadPoolRunsInline)
{
    ThreadPool pool(1);
    auto future = pool.submit([] { return std::this_thread::get_id(); });
    EXPECT_EQ(future.get(), std::this_thread::get_id());
}

TEST(ThreadPool, TeardownCompletesQueuedWork)
{
    // A latch (not a sleep) backs the queue up deterministically: the
    // single worker blocks in the first task until every later task is
    // enqueued, so the destructor provably starts with work pending
    // and must drain it rather than drop it.
    std::atomic<int> completed{0};
    std::latch gate(1);
    std::vector<std::future<void>> futures;
    {
        ThreadPool pool(2); // one worker
        futures.push_back(pool.submit([&] {
            gate.wait();
            completed.fetch_add(1);
        }));
        for (int i = 0; i < 7; ++i)
            futures.push_back(
                pool.submit([&] { completed.fetch_add(1); }));
        gate.count_down();
        // Destructor runs here, racing the worker for the tail of the
        // queue; either way all eight tasks must have completed by the
        // time it returns.
    }
    EXPECT_EQ(completed.load(), 8);
    for (auto &future : futures) {
        EXPECT_EQ(future.wait_for(std::chrono::seconds(0)),
                  std::future_status::ready);
    }
}

TEST(ThreadPool, OnWorkerThreadDistinguishesCallers)
{
    EXPECT_FALSE(ThreadPool::onWorkerThread());
    ThreadPool pool(2);
    auto future =
        pool.submit([] { return ThreadPool::onWorkerThread(); });
    EXPECT_TRUE(future.get());
    EXPECT_FALSE(ThreadPool::onWorkerThread());
}

TEST(ThreadPoolDeathTest, InvertedRangeFails)
{
    ThreadPool pool(1);
    EXPECT_DEATH(pool.parallelFor(5, 3, [](std::size_t) {}),
                 "inverted");
}

TEST(ThreadPoolDeathTest, ZeroGrainFails)
{
    ThreadPool pool(1);
    EXPECT_DEATH(pool.parallelFor(0, 3, [](std::size_t) {}, 0),
                 "grain");
}

} // namespace
} // namespace acdse
