/**
 * @file
 * Unit tests for the synthetic workload generator and the benchmark
 * suite profiles.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "trace/suites.hh"
#include "trace/trace_generator.hh"

namespace acdse
{
namespace
{

Trace
makeTrace(const std::string &name, std::size_t length = 12000)
{
    return TraceGenerator(profileByName(name)).generate(length);
}

TEST(Suites, PaperProgramCounts)
{
    EXPECT_EQ(specCpu2000Profiles().size(), 26u); // full SPEC CPU 2000
    EXPECT_EQ(miBenchProfiles().size(), 19u);     // ghostscript omitted
    EXPECT_EQ(allProfiles().size(), 45u);
}

TEST(Suites, ContainsPaperLandmarks)
{
    // Programs the paper discusses by name.
    for (const char *name :
         {"applu", "art", "mcf", "parser", "gzip", "patricia",
          "tiff2rgba"}) {
        EXPECT_NO_FATAL_FAILURE(profileByName(name)) << name;
    }
    EXPECT_EQ(profileByName("art").suite, Suite::SpecCpu2000);
    EXPECT_EQ(profileByName("patricia").suite, Suite::MiBench);
}

TEST(Suites, NamesAreUniquePerSuite)
{
    const auto spec = programNames(Suite::SpecCpu2000);
    const auto mibench = programNames(Suite::MiBench);
    EXPECT_EQ(spec.size(), 26u);
    EXPECT_EQ(mibench.size(), 19u);
}

TEST(TraceGenerator, ExactLength)
{
    EXPECT_EQ(makeTrace("gzip", 5000).size(), 5000u);
    EXPECT_EQ(makeTrace("art", 123).size(), 123u);
}

TEST(TraceGenerator, Deterministic)
{
    const Trace a = makeTrace("swim", 4000);
    const Trace b = makeTrace("swim", 4000);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].pc, b[i].pc);
        EXPECT_EQ(a[i].addr, b[i].addr);
        EXPECT_EQ(a[i].cls, b[i].cls);
        EXPECT_EQ(a[i].taken, b[i].taken);
    }
}

TEST(TraceGenerator, DifferentProgramsDiffer)
{
    const Trace a = makeTrace("gzip", 2000);
    const Trace b = makeTrace("mcf", 2000);
    int same = 0;
    for (std::size_t i = 0; i < 2000; ++i)
        same += a[i].pc == b[i].pc && a[i].cls == b[i].cls;
    EXPECT_LT(same, 500);
}

TEST(TraceGenerator, BranchFractionTracksProfile)
{
    for (const char *name : {"gzip", "swim", "crc32"}) {
        const ProgramProfile &p = profileByName(name);
        const Trace t = makeTrace(name, 20000);
        EXPECT_NEAR(t.stats().branchFraction, p.branchFraction,
                    p.branchFraction * 0.45)
            << name;
    }
}

TEST(TraceGenerator, FpProgramsHaveFpOps)
{
    const Trace fp = makeTrace("applu", 8000);
    const Trace integer = makeTrace("bzip2", 8000);
    const auto &fs = fp.stats().classFraction;
    const auto &is = integer.stats().classFraction;
    const double fp_frac =
        fs[static_cast<std::size_t>(InstClass::FpAlu)] +
        fs[static_cast<std::size_t>(InstClass::FpMul)] +
        fs[static_cast<std::size_t>(InstClass::FpDiv)];
    const double int_fp_frac =
        is[static_cast<std::size_t>(InstClass::FpAlu)] +
        is[static_cast<std::size_t>(InstClass::FpMul)] +
        is[static_cast<std::size_t>(InstClass::FpDiv)];
    EXPECT_GT(fp_frac, 0.2);
    EXPECT_DOUBLE_EQ(int_fp_frac, 0.0);
}

TEST(TraceGenerator, DependencesPointBackwards)
{
    const Trace t = makeTrace("gcc", 6000);
    for (std::size_t i = 0; i < t.size(); ++i) {
        EXPECT_LE(t[i].srcDist1, i);
        EXPECT_LE(t[i].srcDist2, i);
    }
}

TEST(TraceGenerator, MemoryAddressesWithinFootprint)
{
    const ProgramProfile &p = profileByName("parser");
    const Trace t = makeTrace("parser", 8000);
    const std::uint64_t base = 0x1000'0000;
    const std::uint64_t footprint =
        static_cast<std::uint64_t>(p.dataFootprintKb * 1024.0);
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (!isMemClass(t[i].cls))
            continue;
        EXPECT_GE(t[i].addr, base);
        EXPECT_LT(t[i].addr, base + footprint);
        EXPECT_EQ(t[i].addr % 8, 0u);
    }
}

TEST(TraceGenerator, CodeFootprintScalesWithProfile)
{
    const Trace small = makeTrace("crc32", 20000);
    const Trace big = makeTrace("gcc", 20000);
    EXPECT_LT(small.stats().distinctPcs, big.stats().distinctPcs);
}

TEST(TraceGenerator, PointerChasingCreatesLoadLoadDeps)
{
    const Trace t = makeTrace("mcf", 12000);
    std::size_t chases = 0, loads = 0;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].cls != InstClass::Load)
            continue;
        ++loads;
        if (t[i].srcDist1 && i >= t[i].srcDist1 &&
            t[i - t[i].srcDist1].cls == InstClass::Load) {
            ++chases;
        }
    }
    ASSERT_GT(loads, 0u);
    EXPECT_GT(static_cast<double>(chases) / loads, 0.15);
}

TEST(TraceGenerator, BranchTargetsAreRealBlockStarts)
{
    const Trace t = makeTrace("twolf", 6000);
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
        if (t[i].cls == InstClass::Branch && t[i].taken) {
            EXPECT_EQ(t[i + 1].pc, t[i].target);
        }
    }
}

TEST(TraceGenerator, NotTakenFallsThrough)
{
    const Trace t = makeTrace("twolf", 6000);
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
        if (t[i].cls == InstClass::Branch && !t[i].taken) {
            EXPECT_EQ(t[i + 1].pc, t[i].pc + 4);
        }
    }
}

TEST(TraceGenerator, MeanDepDistanceOrdersPrograms)
{
    // parser is built serial (3.5), swim parallel (~18): the generated
    // traces must preserve the ordering.
    const double serial = makeTrace("parser", 15000).stats().meanDepDistance;
    const double parallel = makeTrace("swim", 15000).stats().meanDepDistance;
    EXPECT_LT(serial + 4.0, parallel);
}

/** Every profile in both suites must generate without issue. */
class AllProgramsGenerate : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(AllProgramsGenerate, GeneratesAndHasBranches)
{
    const ProgramProfile &p = allProfiles()[GetParam()];
    const Trace t = TraceGenerator(p).generate(4000);
    EXPECT_EQ(t.size(), 4000u);
    EXPECT_GT(t.stats().branchFraction, 0.0) << p.name;
    EXPECT_GT(t.stats().distinctPcs, 10u) << p.name;
    EXPECT_GT(t.stats().distinctLines, 2u) << p.name;
}

INSTANTIATE_TEST_SUITE_P(Suites, AllProgramsGenerate,
                         ::testing::Range<std::size_t>(0, 45));

TEST(TraceGeneratorDeathTest, UnknownProgramIsFatal)
{
    EXPECT_DEATH(profileByName("does-not-exist"), "unknown benchmark");
}

} // namespace
} // namespace acdse
