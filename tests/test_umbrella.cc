/**
 * @file
 * Smoke test for the public umbrella header: everything a downstream
 * user needs must be reachable through acdse.hh alone, and a minimal
 * end-to-end flow must work with only its declarations.
 */

#include <gtest/gtest.h>

#include "acdse.hh"

namespace acdse
{
namespace
{

TEST(Umbrella, MinimalEndToEndThroughPublicApi)
{
    // Design space.
    const MicroarchConfig baseline = DesignSpace::baseline();
    ASSERT_TRUE(DesignSpace::isValid(baseline));

    // Workload.
    const Trace trace =
        TraceGenerator(profileByName("sha")).generate(2000);

    // Simulation.
    const SimulationResult result = simulate(baseline, trace);
    EXPECT_GT(result.metrics.cycles, 0.0);

    // A program-specific model over a few simulated points.
    const auto configs = DesignSpace::sampleValidConfigs(24, 5);
    std::vector<double> values;
    for (const auto &config : configs)
        values.push_back(simulate(config, trace).metrics.cycles);
    ProgramSpecificPredictor model;
    model.train(configs, values);
    EXPECT_GT(model.predict(baseline), 0.0);

    // Refinement over the predictor through the explore layer.
    const explore::BatchScorer scorer =
        [&](std::span<const MicroarchConfig> configs,
            std::span<double> out) {
            for (std::size_t i = 0; i < configs.size(); ++i)
                out[i] = model.predict(configs[i]);
        };
    const std::vector<explore::ScoredConfig> seeds{{baseline, 0.0}};
    explore::RefineOptions refine_options;
    refine_options.maxSteps = 4;
    const auto found = explore::refine(scorer, seeds, refine_options);
    EXPECT_FALSE(found.empty());
    EXPECT_LE(found.front().predicted, model.predict(baseline));
}

TEST(Umbrella, MetricsAndStatsAreVisible)
{
    const Metrics m = Metrics::fromCyclesEnergy(10.0, 2.0);
    EXPECT_DOUBLE_EQ(m.get(Metric::Ed), 20.0);
    const std::vector<double> xs{1.0, 2.0, 3.0};
    EXPECT_DOUBLE_EQ(stats::mean(xs), 2.0);
}

} // namespace
} // namespace acdse
