/**
 * @file
 * acdse-explore: streaming design-space exploration front-end.
 *
 * Loads a trained model artifact (see serve/model_store.hh) and runs
 * the exploration engine over the 13-parameter design space: seeded
 * uniform sampling of the full ~18-billion-point valid space
 * (--mode sample, the default) or exhaustive enumeration of a reduced
 * grid (--mode enumerate with --stride/--fix). The predicted Pareto
 * frontier and per-metric top-k lists are written as CSV; an optional
 * greedy refinement pass (--refine) hill-climbs each top-k point over
 * its single-parameter neighbours through the same batched kernels.
 *
 * CSV schemas (atomic writes, no quoting):
 *   frontier: the 13 Table-1 parameter columns, then one column per
 *             Pareto objective (e.g. cycles,energy), ascending in the
 *             first objective;
 *   topk:     metric,rank, the 13 parameter columns, predicted.
 *
 * Usage:
 *   acdse-explore --model FILE [--mode sample|enumerate]
 *                 [--samples N] [--stride K] [--fix NAME=VALUE]...
 *                 [--metrics a,b] [--pareto X,Y] [--topk K] [--refine]
 *                 [--tile N] [--seed S] [--threads N]
 *                 [--frontier-out FILE] [--topk-out FILE]
 *                 [--stats-out FILE]
 *
 * Results are bit-identical at any --threads value.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "base/binary_io.hh"
#include "base/csv.hh"
#include "base/logging.hh"
#include "base/parse.hh"
#include "base/thread_pool.hh"
#include "explore/explorer.hh"
#include "explore/refine.hh"
#include "obs/stats_export.hh"
#include "serve/model_store.hh"

using namespace acdse;

namespace
{

struct CliOptions
{
    std::string modelPath;
    explore::ExploreOptions engine;
    std::vector<Metric> metrics{Metric::Cycles, Metric::Energy};
    bool refine = false;
    std::size_t threads = 0; //!< 0 = the shared global pool
    std::string frontierOut = "frontier.csv";
    std::string topkOut = "topk.csv";
    std::string statsOut; //!< acdse-stats-v1 dump path (empty = none)
};

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --model FILE [--mode sample|enumerate]\n"
        "          [--samples N] [--stride K] [--fix NAME=VALUE]...\n"
        "          [--metrics a,b] [--pareto X,Y] [--topk K]\n"
        "          [--refine] [--tile N] [--seed S] [--threads N]\n"
        "          [--frontier-out FILE] [--topk-out FILE]\n"
        "          [--stats-out FILE]\n"
        "\n"
        "Explore the design space with a trained model artifact:\n"
        "predicted Pareto frontier and per-metric top-k as CSV.\n"
        "Parameter names for --fix: width,rob,iq,lsq,rf,rfrd,rfwr,\n"
        "bpred,btb,br,il1,dl1,l2.\n",
        argv0);
    std::exit(2);
}

/** CLI key of each parameter, in Param order. */
constexpr const char *kParamKeys[kNumParams] = {
    "width", "rob", "iq",  "lsq", "rf",  "rfrd", "rfwr",
    "bpred", "btb", "br",  "il1", "dl1", "l2"};

Param
paramByKey(const std::string &key)
{
    for (std::size_t i = 0; i < kNumParams; ++i) {
        if (key == kParamKeys[i])
            return static_cast<Param>(i);
    }
    fatal("unknown parameter '", key, "' (expected one of width, rob, "
          "iq, lsq, rf, rfrd, rfwr, bpred, btb, br, il1, dl1, l2)");
}

Metric
metricByKey(const std::string &key)
{
    for (Metric metric : kAllMetrics) {
        if (key == metricName(metric))
            return metric;
    }
    fatal("unknown metric '", key,
          "' (expected cycles, energy, ed or edd)");
}

std::vector<std::string>
splitList(const std::string &list)
{
    std::vector<std::string> out;
    std::string item;
    for (char c : list) {
        if (c == ',') {
            if (!item.empty())
                out.push_back(item);
            item.clear();
        } else {
            item.push_back(c);
        }
    }
    if (!item.empty())
        out.push_back(item);
    return out;
}

CliOptions
parseArgs(int argc, char **argv)
{
    CliOptions options;
    std::size_t stride = 1;
    std::vector<std::pair<Param, int>> fixes;
    auto value = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            fatal("missing value after ", argv[i]);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--model")) {
            options.modelPath = value(i);
        } else if (!std::strcmp(argv[i], "--mode")) {
            const std::string mode = value(i);
            if (mode == "sample")
                options.engine.mode = explore::Mode::Sample;
            else if (mode == "enumerate")
                options.engine.mode = explore::Mode::Enumerate;
            else
                fatal("--mode must be 'sample' or 'enumerate', got '",
                      mode, "'");
        } else if (!std::strcmp(argv[i], "--samples")) {
            options.engine.samples =
                parseU64OrDie("--samples", value(i));
        } else if (!std::strcmp(argv[i], "--stride")) {
            stride = static_cast<std::size_t>(
                parseU64OrDie("--stride", value(i)));
        } else if (!std::strcmp(argv[i], "--fix")) {
            const std::string assign = value(i);
            const auto eq = assign.find('=');
            if (eq == std::string::npos)
                fatal("--fix expects NAME=VALUE, got '", assign, "'");
            const Param p = paramByKey(assign.substr(0, eq));
            const auto v =
                parseI64OrDie("--fix", assign.substr(eq + 1));
            fixes.emplace_back(p, static_cast<int>(v));
        } else if (!std::strcmp(argv[i], "--metrics")) {
            options.metrics.clear();
            for (const auto &name : splitList(value(i)))
                options.metrics.push_back(metricByKey(name));
        } else if (!std::strcmp(argv[i], "--pareto")) {
            const auto pair = splitList(value(i));
            if (pair.size() != 2)
                fatal("--pareto expects two metrics, e.g. "
                      "cycles,energy");
            options.engine.paretoX = metricByKey(pair[0]);
            options.engine.paretoY = metricByKey(pair[1]);
        } else if (!std::strcmp(argv[i], "--topk")) {
            options.engine.topK = static_cast<std::size_t>(
                parseU64OrDie("--topk", value(i)));
        } else if (!std::strcmp(argv[i], "--refine")) {
            options.refine = true;
        } else if (!std::strcmp(argv[i], "--tile")) {
            options.engine.tileSize = static_cast<std::size_t>(
                parseU64OrDie("--tile", value(i)));
        } else if (!std::strcmp(argv[i], "--seed")) {
            options.engine.seed = parseU64OrDie("--seed", value(i));
        } else if (!std::strcmp(argv[i], "--threads")) {
            options.threads = static_cast<std::size_t>(
                parseU64OrDie("--threads", value(i)));
        } else if (!std::strcmp(argv[i], "--frontier-out")) {
            options.frontierOut = value(i);
        } else if (!std::strcmp(argv[i], "--topk-out")) {
            options.topkOut = value(i);
        } else if (!std::strcmp(argv[i], "--stats-out")) {
            options.statsOut = value(i);
        } else if (!std::strcmp(argv[i], "--help") ||
                   !std::strcmp(argv[i], "-h")) {
            usage(argv[0]);
        } else {
            warn("unknown argument '", argv[i], "'");
            usage(argv[0]);
        }
    }
    if (options.modelPath.empty()) {
        warn("--model is required");
        usage(argv[0]);
    }
    if (options.metrics.empty())
        fatal("--metrics must name at least one metric");
    if (options.engine.tileSize == 0)
        fatal("--tile must be positive");

    // Sub-space construction: stride first, then pins on top. Illegal
    // pin values are fatal here rather than deep in the engine.
    explore::SubSpace space = explore::SubSpace::strided(stride);
    for (const auto &[p, v] : fixes) {
        if (!paramSpec(p).contains(v))
            fatal(v, " is not a legal value for ", paramSpec(p).name);
        space.fix(p, v);
    }
    options.engine.space = std::move(space);

    bool has_x = false, has_y = false;
    for (Metric metric : options.metrics) {
        has_x |= metric == options.engine.paretoX;
        has_y |= metric == options.engine.paretoY;
    }
    if (!has_x || !has_y)
        fatal("the --pareto objectives must be listed in --metrics");
    return options;
}

/** One formatted CSV cell per double, full round-trip precision. */
std::string
cell(double value)
{
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    return buffer;
}

void
writeFrontierCsv(const std::string &path,
                 const std::vector<explore::FrontierConfig> &frontier,
                 Metric x, Metric y)
{
    CsvFile csv;
    for (std::size_t p = 0; p < kNumParams; ++p)
        csv.header.push_back(kParamKeys[p]);
    csv.header.push_back(metricName(x));
    csv.header.push_back(metricName(y));
    for (const auto &point : frontier) {
        std::vector<std::string> row;
        for (int raw : point.config.raw())
            row.push_back(std::to_string(raw));
        row.push_back(cell(point.x));
        row.push_back(cell(point.y));
        csv.rows.push_back(std::move(row));
    }
    writeCsvAtomic(path, csv);
}

void
writeTopkCsv(const std::string &path, const explore::ExploreResult &result)
{
    CsvFile csv;
    csv.header = {"metric", "rank"};
    for (std::size_t p = 0; p < kNumParams; ++p)
        csv.header.push_back(kParamKeys[p]);
    csv.header.push_back("predicted");
    for (std::size_t k = 0; k < result.metrics.size(); ++k) {
        for (std::size_t rank = 0; rank < result.topk[k].size();
             ++rank) {
            const auto &best = result.topk[k][rank];
            std::vector<std::string> row{
                metricName(result.metrics[k]),
                std::to_string(rank + 1)};
            for (int raw : best.config.raw())
                row.push_back(std::to_string(raw));
            row.push_back(cell(best.predicted));
            csv.rows.push_back(std::move(row));
        }
    }
    writeCsvAtomic(path, csv);
}

} // namespace

int
main(int argc, char **argv)
{
    CliOptions cli = parseArgs(argc, argv);

    // An explicit --threads value gets its own pool; otherwise the
    // engine uses the shared global one (ACDSE_THREADS).
    std::optional<ThreadPool> pool;
    if (cli.threads) {
        pool.emplace(cli.threads);
        cli.engine.pool = &*pool;
    }

    try {
        const ModelArtifact artifact = loadArtifact(cli.modelPath);
        std::vector<explore::MetricEnsemble> ensembles;
        for (Metric metric : cli.metrics) {
            if (!artifact.has(metric))
                fatal("artifact '", cli.modelPath,
                      "' has no predictor for '", metricName(metric),
                      "'");
            const ArchitectureCentricPredictor &predictor =
                artifact.predictor(metric);
            if (!predictor.ready())
                fatal("artifact predictor for '", metricName(metric),
                      "' has no fitted responses");
            ensembles.push_back({metric, &predictor});
        }
        inform("exploring with '", cli.modelPath, "' (",
               artifact.tag().empty() ? "untagged" : artifact.tag(),
               "), ", ensembles.size(), " metrics, ",
               cli.engine.mode == explore::Mode::Enumerate
                   ? cli.engine.space.validPoints()
                   : cli.engine.samples,
               cli.engine.mode == explore::Mode::Enumerate
                   ? " valid grid points"
                   : " samples");

        const auto start = std::chrono::steady_clock::now();
        explore::ExploreResult result =
            explore::explore(ensembles, cli.engine);
        const double seconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();

        if (cli.refine) {
            for (std::size_t k = 0; k < result.metrics.size(); ++k) {
                auto refined = explore::refine(
                    explore::predictorScorer(*ensembles[k].predictor),
                    result.topk[k]);
                if (refined.size() > cli.engine.topK)
                    refined.resize(cli.engine.topK);
                result.topk[k] = std::move(refined);
            }
        }

        writeFrontierCsv(cli.frontierOut, result.frontier,
                         cli.engine.paretoX, cli.engine.paretoY);
        writeTopkCsv(cli.topkOut, result);

        std::printf("explored %llu points (%llu generated, %llu "
                    "filtered) in %.2f s: %.0f points/s\n",
                    static_cast<unsigned long long>(
                        result.stats.predicted),
                    static_cast<unsigned long long>(
                        result.stats.generated),
                    static_cast<unsigned long long>(
                        result.stats.filtered),
                    seconds,
                    static_cast<double>(result.stats.predicted) /
                        seconds);
        std::printf("frontier: %zu points (%s vs %s) -> %s\n",
                    result.frontier.size(),
                    metricName(cli.engine.paretoX),
                    metricName(cli.engine.paretoY),
                    cli.frontierOut.c_str());
        std::printf("top-%zu per metric%s -> %s\n", cli.engine.topK,
                    cli.refine ? " (refined)" : "",
                    cli.topkOut.c_str());
        if (!cli.statsOut.empty()) {
            obs::writeStatsFile(cli.statsOut,
                                obs::Registry::global().snapshot());
            std::printf("wrote stage/metric stats (%s) to %s\n",
                        std::string(obs::kStatsSchema).c_str(),
                        cli.statsOut.c_str());
        }
    } catch (const SerializationError &err) {
        fatal("cannot explore with '", cli.modelPath, "': ",
              err.what());
    }
    return 0;
}
