/**
 * @file
 * acdse-jobs: the crash-safe campaign job server CLI.
 *
 *   acdse-jobs run    --dir D [--workers N] [--programs a,b,c]
 *                     [--target PROG] [--train T] [--responses R]
 *                     [--shard-cells K] [--sim-only] [--verbose]
 *                     [--stats-out FILE]
 *   acdse-jobs resume --dir D [--workers N] [--plan FILE] [...]
 *   acdse-jobs status --dir D [--plan FILE]
 *
 * `run` persists a CampaignJobPlan into the directory, opens the job
 * journal and forks N worker processes that drain the queue
 * (simulate-shard -> train-program -> fit-responses); once every job
 * is done the parent assembles the shard checkpoints into the shared
 * campaign cache. `resume` reloads the persisted plan -- the resolved
 * parameters, not the environment -- bumps the journal generation so
 * jobs abandoned by killed workers become claimable, and drains
 * whatever is left; because every handler is idempotent and
 * checkpoints atomically, the resumed artifacts are byte-identical to
 * an uninterrupted run. `status` prints a machine-readable JSON
 * summary (schema acdse-jobs-status-v1) without touching the journal.
 *
 * Exit codes: 0 success; 1 error (corrupt journal, failed jobs, bad
 * plan); 2 usage; 3 interrupted -- a worker died abnormally and the
 * run is resumable.
 */

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <limits>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>

#include "base/json.hh"
#include "base/logging.hh"
#include "base/parse.hh"
#include "jobs/campaign_jobs.hh"
#include "jobs/job_queue.hh"
#include "obs/stats_export.hh"
#include "trace/suites.hh"

using namespace acdse;
using namespace acdse::jobs;

namespace
{

struct CliOptions
{
    std::string command;  //!< run | resume | status
    std::string dir = "."; //!< the shared cache/journal directory
    std::string planFile; //!< explicit plan path (resume/status)
    std::size_t workers = 2;
    std::vector<std::string> trainingPrograms{"gzip", "crafty", "mcf"};
    std::string target = "vpr";
    std::size_t trainSims = 32;
    std::size_t responses = 16;
    std::size_t shardCells = 64;
    bool simOnly = false;
    bool verbose = false;
    std::string statsOut;
};

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s <run|resume|status> --dir DIR\n"
        "  run     [--workers N] [--programs a,b,c] [--target PROG]\n"
        "          [--train T] [--responses R] [--shard-cells K]\n"
        "          [--sim-only] [--verbose] [--stats-out FILE]\n"
        "  resume  [--workers N] [--plan FILE] [--verbose]\n"
        "          [--stats-out FILE]\n"
        "  status  [--plan FILE]\n",
        argv0);
    std::exit(2);
}

std::vector<std::string>
splitList(const std::string &list)
{
    std::vector<std::string> out;
    std::string item;
    for (char c : list) {
        if (c == ',') {
            if (!item.empty())
                out.push_back(item);
            item.clear();
        } else {
            item.push_back(c);
        }
    }
    if (!item.empty())
        out.push_back(item);
    return out;
}

CliOptions
parseArgs(int argc, char **argv)
{
    if (argc < 2)
        usage(argv[0]);
    CliOptions options;
    options.command = argv[1];
    if (options.command != "run" && options.command != "resume" &&
        options.command != "status") {
        usage(argv[0]);
    }
    auto value = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage(argv[0]);
        return argv[++i];
    };
    for (int i = 2; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--dir")) {
            options.dir = value(i);
        } else if (!std::strcmp(argv[i], "--plan")) {
            options.planFile = value(i);
        } else if (!std::strcmp(argv[i], "--workers")) {
            options.workers = static_cast<std::size_t>(
                parseU64OrDie("--workers", value(i)));
        } else if (!std::strcmp(argv[i], "--programs")) {
            options.trainingPrograms = splitList(value(i));
        } else if (!std::strcmp(argv[i], "--target")) {
            options.target = value(i);
        } else if (!std::strcmp(argv[i], "--train")) {
            options.trainSims = static_cast<std::size_t>(
                parseU64OrDie("--train", value(i)));
        } else if (!std::strcmp(argv[i], "--responses")) {
            options.responses = static_cast<std::size_t>(
                parseU64OrDie("--responses", value(i)));
        } else if (!std::strcmp(argv[i], "--shard-cells")) {
            options.shardCells = static_cast<std::size_t>(
                parseU64OrDie("--shard-cells", value(i)));
        } else if (!std::strcmp(argv[i], "--sim-only")) {
            options.simOnly = true;
        } else if (!std::strcmp(argv[i], "--verbose")) {
            options.verbose = true;
        } else if (!std::strcmp(argv[i], "--stats-out")) {
            options.statsOut = value(i);
        } else {
            usage(argv[0]);
        }
    }
    if (options.workers == 0)
        fatal("--workers must be positive");
    return options;
}

/** Typed program-name validation (profileByName would panic). */
void
requireKnownProgram(const std::string &name)
{
    for (const auto &profile : allProfiles()) {
        if (profile.name == name)
            return;
    }
    fatal("unknown program '", name, "'");
}

/** Build a fresh plan from the CLI + environment (run command). */
CampaignJobPlan
planFromCli(const CliOptions &cli)
{
    CampaignJobPlan plan;
    plan.options = CampaignOptions::fromEnvironment();
    plan.options.cacheDir = cli.dir;
    plan.options.quiet = !cli.verbose;
    plan.shardCells = cli.shardCells;

    plan.programs = cli.trainingPrograms;
    if (!cli.simOnly) {
        if (std::find(plan.programs.begin(), plan.programs.end(),
                      cli.target) == plan.programs.end()) {
            plan.programs.push_back(cli.target);
        }
        plan.newProgram = cli.target;
        plan.metrics = {0, 1}; // cycles and energy
        if (!std::getenv("ACDSE_CONFIGS")) {
            // Enough for T training points and R responses while
            // staying interactive (mirrors train_then_serve).
            plan.options.numConfigs =
                cli.trainSims + cli.responses + 64;
        }
        if (plan.options.numConfigs < cli.trainSims + cli.responses) {
            fatal("campaign has ", plan.options.numConfigs,
                  " configs but T+R needs ",
                  cli.trainSims + cli.responses);
        }
        for (std::size_t c = 0; c < cli.trainSims; ++c)
            plan.trainIdx.push_back(c);
        for (std::size_t c = 0; c < cli.responses; ++c)
            plan.responseIdx.push_back(cli.trainSims + c);
    }
    for (const auto &name : plan.programs)
        requireKnownProgram(name);
    return plan;
}

/** Locate the plan file for resume/status. */
std::string
findPlanFile(const CliOptions &cli)
{
    if (!cli.planFile.empty())
        return cli.planFile;
    std::vector<std::string> found;
    std::error_code ec;
    for (const auto &entry :
         std::filesystem::directory_iterator(cli.dir, ec)) {
        const std::string name = entry.path().filename().string();
        if (name.starts_with("acdse_jobs_") &&
            name.ends_with(".plan.csv")) {
            found.push_back(entry.path().string());
        }
    }
    if (found.empty())
        throw JobError("no job plan found in '" + cli.dir +
                       "' (run first, or pass --plan)");
    if (found.size() > 1) {
        std::string all;
        for (const auto &path : found)
            all += "\n  " + path;
        throw JobError("multiple job plans in '" + cli.dir +
                       "', pass --plan to pick one:" + all);
    }
    return found.front();
}

/**
 * The worker-process body: drain the queue until it is empty or
 * stuck. Never returns. Exits via std::exit so that atexit hooks
 * (coverage flushing among them) run even in forked children.
 */
[[noreturn]] void
workerMain(const CampaignJobPlan &plan, std::size_t workerIdx,
           const std::string &statsOut)
{
    // Fault injection (tests only): die at a job boundary after
    // completing this many jobs (ACDSE_JOBS_KILL_AFTER="<w>:<k>").
    std::size_t killAfter = std::numeric_limits<std::size_t>::max();
    if (const char *spec = std::getenv("ACDSE_JOBS_KILL_AFTER");
        spec && *spec) {
        const std::string text(spec);
        const std::size_t colon = text.find(':');
        const auto w = parseU64(text.substr(0, colon));
        const auto k = colon == std::string::npos
                           ? std::nullopt
                           : parseU64(text.substr(colon + 1));
        if (w && k && *w == workerIdx)
            killAfter = static_cast<std::size_t>(*k);
    }

    int exitCode = 0;
    try {
        // A fresh queue handle: a fork-inherited one would share the
        // parent's lock file description and no longer exclude.
        JobQueue queue(plan.options.cacheDir, plan.journalName());
        queue.attach(plan.planHash());
        CampaignJobRunner runner(plan);
        std::size_t completed = 0;
        for (bool draining = true; draining;) {
            if (completed >= killAfter)
                ::raise(SIGKILL);
            JobSpec spec;
            int attempt = 0;
            switch (queue.claim(spec, attempt)) {
              case ClaimResult::Claimed:
                try {
                    runner.execute(spec, attempt);
                } catch (const JournalError &) {
                    throw;
                } catch (const std::exception &e) {
                    warn("worker ", workerIdx, ": job '", spec.id,
                         "' attempt ", attempt, " failed: ", e.what());
                    queue.fail(spec.id);
                    break;
                }
                queue.complete(spec.id);
                ++completed;
                break;
              case ClaimResult::Wait:
                // Another worker holds the remaining jobs of this
                // phase; poll until it finishes or dies.
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(10));
                break;
              case ClaimResult::Drained:
                draining = false;
                break;
              case ClaimResult::Stuck:
                warn("worker ", workerIdx,
                     ": queue is stuck (a job failed permanently)");
                exitCode = 1;
                draining = false;
                break;
            }
        }
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: worker %zu: %s\n", workerIdx,
                     e.what());
        exitCode = 1;
    }
    if (!statsOut.empty()) {
        obs::writeStatsFile(statsOut + ".worker" +
                                std::to_string(workerIdx),
                            obs::Registry::global().snapshot());
    }
    std::exit(exitCode);
}

/**
 * Fork the workers and supervise them. @return 0 when every worker
 * drained cleanly, 1 when any reported an error, 3 when any died
 * abnormally (the run is resumable).
 */
int
superviseWorkers(const CampaignJobPlan &plan, std::size_t workers,
                 const std::string &statsOut)
{
    // No threads may exist on this side of the fork: the parent
    // deliberately constructs no Campaign (and thus no thread pool)
    // before the workers are running.
    std::fflush(nullptr);
    std::vector<pid_t> children;
    for (std::size_t w = 0; w < workers; ++w) {
        const pid_t pid = ::fork();
        if (pid < 0) {
            for (const pid_t child : children)
                ::kill(child, SIGKILL);
            fatal("fork failed: ", std::strerror(errno));
        }
        if (pid == 0)
            workerMain(plan, w, statsOut); // never returns
        children.push_back(pid);
    }

    bool signaled = false;
    int worst = 0;
    std::vector<pid_t> alive = children;
    while (!alive.empty()) {
        int status = 0;
        const pid_t pid = ::waitpid(-1, &status, 0);
        if (pid < 0) {
            if (errno == EINTR)
                continue;
            fatal("waitpid failed: ", std::strerror(errno));
        }
        alive.erase(std::remove(alive.begin(), alive.end(), pid),
                    alive.end());
        if (WIFSIGNALED(status)) {
            // A dead worker's claimed jobs stay Running for this
            // generation: the siblings would wait forever, so stop
            // the whole session -- it resumes cleanly.
            signaled = true;
            for (const pid_t child : alive)
                ::kill(child, SIGKILL);
        } else if (WIFEXITED(status)) {
            worst = std::max(worst, WEXITSTATUS(status));
        }
    }
    if (signaled)
        return 3;
    return worst == 0 ? 0 : 1;
}

int
runSession(const CampaignJobPlan &plan, const CliOptions &cli)
{
    JobQueue queue(plan.options.cacheDir, plan.journalName());
    queue.open(plan.planHash(), plan.jobs());

    const int outcome =
        superviseWorkers(plan, cli.workers, cli.statsOut);
    if (outcome == 3) {
        inform("interrupted; resume with: acdse-jobs resume --dir ",
               plan.options.cacheDir);
        return 3;
    }
    if (outcome != 0)
        return outcome;

    CampaignJobRunner runner(plan);
    runner.finalize();
    if (!cli.statsOut.empty()) {
        obs::writeStatsFile(cli.statsOut,
                            obs::Registry::global().snapshot());
    }
    inform("campaign job run complete: cache at ",
           runner.campaign().cachePath());
    return 0;
}

const char *
stateName(JobState state)
{
    switch (state) {
      case JobState::Pending: return "pending";
      case JobState::Running: return "running";
      case JobState::Done: return "done";
      case JobState::Failed: return "failed";
    }
    return "unknown";
}

int
statusCommand(const CampaignJobPlan &plan)
{
    JobQueue queue(plan.options.cacheDir, plan.journalName());
    QueueSnapshot snap = queue.snapshot();
    if (snap.jobs.empty()) {
        // Journal never opened: report the plan's jobs as pending.
        for (const auto &spec : plan.jobs())
            snap.jobs.push_back({spec, JobState::Pending, 0, 0});
        snap.planHash = plan.planHash();
    }

    JsonWriter w;
    w.beginObject()
        .key("schema").value("acdse-jobs-status-v1")
        .key("plan").value(snap.planHash)
        .key("campaign").value(plan.key())
        .key("generation").value(
            static_cast<std::uint64_t>(snap.generation))
        .key("jobs");
    w.beginObject()
        .key("total").value(static_cast<std::uint64_t>(
            snap.jobs.size()))
        .key("pending").value(static_cast<std::uint64_t>(
            snap.countIn(JobState::Pending)))
        .key("running").value(static_cast<std::uint64_t>(
            snap.countIn(JobState::Running)))
        .key("done").value(static_cast<std::uint64_t>(
            snap.countIn(JobState::Done)))
        .key("failed").value(static_cast<std::uint64_t>(
            snap.countIn(JobState::Failed)))
        .endObject();
    w.key("kinds").beginObject();
    for (const char *kind :
         {"simulate-shard", "train-program", "fit-responses"}) {
        std::uint64_t total = 0, done = 0;
        for (const auto &job : snap.jobs) {
            if (job.spec.kind != kind)
                continue;
            ++total;
            if (job.state == JobState::Done)
                ++done;
        }
        w.key(kind).beginObject()
            .key("total").value(total)
            .key("done").value(done)
            .endObject();
    }
    w.endObject();
    w.key("states").beginArray();
    for (const auto &job : snap.jobs) {
        w.beginObject()
            .key("id").value(job.spec.id)
            .key("state").value(stateName(job.state))
            .key("attempts").value(
                static_cast<std::uint64_t>(job.attempts))
            .endObject();
    }
    w.endArray()
        .key("drained").value(snap.drained())
        .key("stuck").value(snap.stuck())
        .endObject();
    std::printf("%s\n", w.str().c_str());
    return snap.stuck() ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const CliOptions cli = parseArgs(argc, argv);
    try {
        if (cli.command == "run") {
            CampaignJobPlan plan = planFromCli(cli);
            // An existing plan for the same campaign key must agree;
            // refusing beats silently replacing a half-run's plan.
            std::error_code ec;
            if (std::filesystem::exists(plan.planPath(), ec)) {
                const CampaignJobPlan existing =
                    CampaignJobPlan::load(plan.planPath());
                if (existing.planHash() != plan.planHash()) {
                    throw JobError(
                        "plan file " + plan.planPath() +
                        " describes a different run; resume it or "
                        "use a fresh --dir");
                }
            } else {
                plan.save();
            }
            return runSession(plan, cli);
        }
        const CampaignJobPlan plan =
            CampaignJobPlan::load(findPlanFile(cli));
        if (cli.command == "resume")
            return runSession(plan, cli);
        return statusCommand(plan);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
