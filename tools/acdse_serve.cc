/**
 * @file
 * acdse-serve: command-line prediction server front-end.
 *
 * Loads a model artifact (see serve/model_store.hh) and streams
 * predictions for CSV query batches read from a file or stdin. Each
 * input row is the 13 design-space parameters in Table 1 order:
 *
 *   width,ROB,IQ,LSQ,RF,RF rd,RF wr,bpred(K),BTB(K),branches,
 *   IL1(KB),DL1(KB),L2(KB)
 *
 * A header row and '#' comment lines are skipped. Output is CSV: the
 * 13 echoed parameters followed by one column per metric the artifact
 * carries. Rows are processed in batches (--batch) across the service
 * thread pool, so piping a large file through this binary exercises
 * the same hot path as bench_serve_throughput.
 *
 * Serving-front-end modes on top of that:
 *
 *  - --max-queue N routes batches through the lock-free ingest ring
 *    and the drainer thread (PredictionService::submit) instead of
 *    the synchronous predict() path; a full ring is retried, so the
 *    CLI never drops a row.
 *
 *  - --tenants name=model.acdse,... serves several models at once.
 *    Input rows gain a leading tenant-name column and output rows
 *    echo it plus the model version that served them. Tenant mode
 *    always uses the ingest ring.
 *
 *  - --hot-swap-watch polls the model file(s) between batches and
 *    republishes on any modification-time change: in-flight batches
 *    finish on the old version, later ones see the new one, and a
 *    half-written file is warned about and retried rather than fatal.
 *
 * Usage:
 *   acdse-serve --model trained.acdse [--input queries.csv]
 *               [--batch N] [--threads N] [--stats]
 *               [--max-queue N] [--tenants NAME=FILE,...]
 *               [--hot-swap-watch]
 *
 * Environment: ACDSE_SERVE_THREADS / ACDSE_SERVE_QUEUE are honoured
 * when --threads / --max-queue are not given.
 */

#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "base/binary_io.hh"
#include "base/csv.hh"
#include "base/logging.hh"
#include "base/parse.hh"
#include "obs/stats_export.hh"
#include "serve/prediction_service.hh"

using namespace acdse;

namespace
{

struct CliOptions
{
    std::string modelPath;
    std::string inputPath = "-";
    std::size_t batch = 256;
    std::size_t threads = 0;  // 0 = ServeOptions default
    std::size_t maxQueue = 0; // 0 = synchronous predict() path
    bool hotSwapWatch = false;
    bool printStats = false;
    std::string statsOut;       //!< acdse-stats-v1 dump path
    std::size_t statsEvery = 0; //!< periodic dump cadence in batches
    /** --tenants entries in declaration order: {name, model path}. */
    std::vector<std::pair<std::string, std::string>> tenants;
};

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --model FILE [--input FILE|-] [--batch N]\n"
        "          [--threads N] [--stats] [--stats-out FILE]\n"
        "          [--stats-every N] [--max-queue N]\n"
        "          [--tenants NAME=FILE,...] [--hot-swap-watch]\n"
        "\n"
        "Serve design-point predictions from a trained model artifact.\n"
        "Reads CSV rows of the 13 Table-1 parameters from --input\n"
        "(default stdin) and writes predictions as CSV to stdout.\n"
        "With --tenants, rows carry a leading tenant-name column and\n"
        "outputs echo the tenant and the serving model version.\n",
        argv0);
    std::exit(2);
}

std::vector<std::pair<std::string, std::string>>
parseTenantsSpec(const std::string &spec)
{
    std::vector<std::pair<std::string, std::string>> tenants;
    std::stringstream stream(spec);
    std::string entry;
    while (std::getline(stream, entry, ',')) {
        const std::size_t eq = entry.find('=');
        if (eq == std::string::npos || eq == 0 ||
            eq + 1 == entry.size())
            fatal("--tenants entry '", entry,
                  "' is not NAME=FILE");
        tenants.emplace_back(entry.substr(0, eq),
                             entry.substr(eq + 1));
    }
    if (tenants.empty())
        fatal("--tenants needs at least one NAME=FILE entry");
    return tenants;
}

CliOptions
parseArgs(int argc, char **argv)
{
    CliOptions options;
    auto value = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            fatal("missing value after ", argv[i]);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--model")) {
            options.modelPath = value(i);
        } else if (!std::strcmp(argv[i], "--input")) {
            options.inputPath = value(i);
        } else if (!std::strcmp(argv[i], "--batch")) {
            options.batch = static_cast<std::size_t>(
                parseU64OrDie("--batch", value(i)));
        } else if (!std::strcmp(argv[i], "--threads")) {
            options.threads = static_cast<std::size_t>(
                parseU64OrDie("--threads", value(i)));
        } else if (!std::strcmp(argv[i], "--max-queue")) {
            options.maxQueue = static_cast<std::size_t>(
                parseU64OrDie("--max-queue", value(i)));
            if (options.maxQueue == 0)
                fatal("--max-queue must be positive");
        } else if (!std::strcmp(argv[i], "--tenants")) {
            options.tenants = parseTenantsSpec(value(i));
        } else if (!std::strcmp(argv[i], "--hot-swap-watch")) {
            options.hotSwapWatch = true;
        } else if (!std::strcmp(argv[i], "--stats")) {
            options.printStats = true;
        } else if (!std::strcmp(argv[i], "--stats-out")) {
            options.statsOut = value(i);
        } else if (!std::strcmp(argv[i], "--stats-every")) {
            options.statsEvery = static_cast<std::size_t>(
                parseU64OrDie("--stats-every", value(i)));
        } else if (!std::strcmp(argv[i], "--help") ||
                   !std::strcmp(argv[i], "-h")) {
            usage(argv[0]);
        } else {
            warn("unknown argument '", argv[i], "'");
            usage(argv[0]);
        }
    }
    if (options.modelPath.empty() && options.tenants.empty()) {
        warn("--model (or --tenants) is required");
        usage(argv[0]);
    }
    if (options.modelPath.empty())
        options.modelPath = options.tenants.front().second;
    if (options.batch == 0)
        fatal("--batch must be positive");
    if (options.statsEvery != 0 && options.statsOut.empty())
        fatal("--stats-every needs --stats-out");
    return options;
}

/**
 * Parse @p cells (the 13 Table-1 parameters, already split) into a
 * configuration; returns false when the row looks like a header row
 * (non-numeric first parameter cell on line 1). Illegal parameter
 * values are fatal with the offending line number, since silently
 * serving a prediction for a point outside the design space would be
 * worse than stopping.
 */
bool
parseParams(const std::vector<std::string> &cells, std::size_t offset,
            std::size_t lineNo, MicroarchConfig &out)
{
    if (cells.size() != offset + kNumParams) {
        fatal("line ", lineNo, ": expected ", offset + kNumParams,
              " comma-separated values, got ", cells.size());
    }
    std::array<int, kNumParams> values;
    for (std::size_t p = 0; p < kNumParams; ++p) {
        const auto parsed = parseI64(cells[offset + p]);
        if (!parsed) {
            // A non-numeric *first* cell on the first line is a header
            // row; a non-numeric cell anywhere else is corrupt data and
            // must not be skipped silently.
            if (lineNo == 1 && p == 0)
                return false;
            fatal("line ", lineNo, ": '", cells[offset + p],
                  "' is not an integer");
        }
        const ParamSpec &spec = paramSpec(static_cast<Param>(p));
        if (*parsed < INT_MIN || *parsed > INT_MAX ||
            !spec.contains(static_cast<int>(*parsed))) {
            fatal("line ", lineNo, ": ", *parsed,
                  " is not a legal value for ", spec.name);
        }
        values[p] = static_cast<int>(*parsed);
    }
    out = MicroarchConfig(values);
    return true;
}

void
writeHeader(const std::vector<Metric> &metrics, bool tenantMode)
{
    if (tenantMode)
        std::printf("tenant,");
    for (std::size_t p = 0; p < kNumParams; ++p)
        std::printf("%s%s", p ? "," : "",
                    paramName(static_cast<Param>(p)).c_str());
    if (tenantMode)
        std::printf(",version");
    for (Metric metric : metrics)
        std::printf(",%s", metricName(metric));
    std::printf("\n");
}

void
writeRow(const MicroarchConfig &query, const PredictionRow &row,
         const std::vector<Metric> &metrics, const char *tenant,
         std::uint64_t version)
{
    if (tenant)
        std::printf("%s,", tenant);
    const auto &raw = query.raw();
    for (std::size_t p = 0; p < kNumParams; ++p)
        std::printf("%s%d", p ? "," : "", raw[p]);
    if (tenant)
        std::printf(",%llu", static_cast<unsigned long long>(version));
    for (Metric metric : metrics)
        std::printf(",%.17g", row.get(metric));
    std::printf("\n");
}

/**
 * --hot-swap-watch bookkeeping for one tenant's model file: poll the
 * modification time between batches and republish on change. A file
 * that is missing or half-written when we look (SerializationError)
 * is warned about and retried on the next poll -- serving continues
 * on the previous version throughout.
 */
struct WatchedModel
{
    TenantId tenant = kDefaultTenant;
    std::string path;
    std::filesystem::file_time_type lastWrite{};

    void poll(PredictionService &service)
    {
        std::error_code ec;
        const auto stamp =
            std::filesystem::last_write_time(path, ec);
        if (ec || stamp == lastWrite)
            return;
        try {
            const std::uint64_t version =
                service.publish(tenant, loadArtifact(path));
            lastWrite = stamp;
            inform("hot-swapped '", path, "' as version ", version);
        } catch (const SerializationError &err) {
            // Likely caught mid-write; keep serving the old version
            // and try again next poll (lastWrite stays stale).
            warn("hot-swap of '", path, "' failed: ", err.what());
        }
    }
};

} // namespace

int
main(int argc, char **argv)
{
    const CliOptions cli = parseArgs(argc, argv);
    const bool tenantMode = !cli.tenants.empty();
    // Tenant routing happens in the drainer, so tenant mode always
    // rides the ingest ring.
    const bool asyncMode = tenantMode || cli.maxQueue != 0;

    ServeOptions serve_options = ServeOptions::fromEnvironment();
    if (cli.threads)
        serve_options.threads = cli.threads;
    if (cli.maxQueue)
        serve_options.maxQueue = cli.maxQueue;
    // Periodic dumps come straight from the service (its private
    // registry); the final dump below also merges the global registry
    // for the pool/ metrics.
    serve_options.statsPath = cli.statsOut;
    serve_options.statsEveryBatches = cli.statsEvery;

    std::ifstream file;
    std::istream *in = &std::cin;
    if (cli.inputPath != "-") {
        file.open(cli.inputPath);
        if (!file)
            fatal("cannot open input '", cli.inputPath, "'");
        in = &file;
    }

    try {
        PredictionService service =
            PredictionService::fromFile(cli.modelPath, serve_options);

        std::vector<WatchedModel> watched;
        std::vector<std::string> tenantNames{"default"};
        if (tenantMode) {
            for (const auto &[name, path] : cli.tenants) {
                const TenantId tenant = service.registerTenant(name);
                service.publish(tenant, loadArtifact(path));
                if (tenant >= tenantNames.size())
                    tenantNames.resize(tenant + 1);
                tenantNames[tenant] = name;
                if (cli.hotSwapWatch)
                    watched.push_back({tenant, path, {}});
            }
        } else if (cli.hotSwapWatch) {
            watched.push_back({kDefaultTenant, cli.modelPath, {}});
        }
        // Seed the watchers' timestamps so the first poll is a no-op
        // for an unchanged file.
        for (WatchedModel &watch : watched) {
            std::error_code ec;
            watch.lastWrite =
                std::filesystem::last_write_time(watch.path, ec);
        }

        const std::vector<Metric> metrics = service.metrics();
        const ModelArtifact &artifact =
            service.model()->artifact;
        inform("serving '", cli.modelPath, "' (",
               artifact.tag().empty() ? "untagged" : artifact.tag(),
               "), ", metrics.size(), " metrics, pool of ",
               service.poolThreads() + 1, " threads",
               asyncMode ? ", async ingest ring of " : "",
               asyncMode ? std::to_string(service.queueCapacity())
                         : std::string());
        writeHeader(metrics, tenantMode);

        std::vector<MicroarchConfig> batch;
        std::vector<TenantId> batchTenants;
        batch.reserve(cli.batch);
        batchTenants.reserve(cli.batch);
        AsyncBatch async(cli.batch);

        std::string line;
        std::size_t line_no = 0;
        auto flush = [&] {
            if (batch.empty())
                return;
            if (asyncMode) {
                async.reset();
                for (std::size_t i = 0; i < batch.size(); ++i) {
                    // A full ring sheds; the CLI's contract is to
                    // serve every input row, so back off and retry
                    // until the drainer makes room.
                    while (service.submit(async, batchTenants[i],
                                          batch[i]) ==
                           SubmitStatus::QueueFull)
                        std::this_thread::yield();
                }
                async.wait();
                for (std::size_t i = 0; i < batch.size(); ++i) {
                    writeRow(batch[i], async.rows()[i], metrics,
                             tenantMode
                                 ? tenantNames[batchTenants[i]]
                                       .c_str()
                                 : nullptr,
                             async.versions()[i]);
                }
            } else {
                const auto rows = service.predict(batch);
                for (std::size_t i = 0; i < batch.size(); ++i)
                    writeRow(batch[i], rows[i], metrics, nullptr, 0);
            }
            batch.clear();
            batchTenants.clear();
            for (WatchedModel &watch : watched)
                watch.poll(service);
        };
        while (std::getline(*in, line)) {
            ++line_no;
            if (line.empty() || line[0] == '#')
                continue;
            const auto cells = splitCsvLine(line);
            TenantId tenant = kDefaultTenant;
            std::size_t offset = 0;
            if (tenantMode) {
                if (cells.empty())
                    continue;
                tenant = service.findTenant(cells[0]);
                if (tenant == ModelRegistry::kInvalidTenant) {
                    // Line 1 with an unknown first cell is the
                    // header row; anywhere else it is bad routing.
                    if (line_no == 1)
                        continue;
                    fatal("line ", line_no, ": unknown tenant '",
                          cells[0], "'");
                }
                offset = 1;
            }
            MicroarchConfig config;
            if (!parseParams(cells, offset, line_no, config))
                continue;
            batch.push_back(config);
            batchTenants.push_back(tenant);
            if (batch.size() == cli.batch)
                flush();
        }
        flush();

        if (cli.printStats) {
            const ServiceStats stats = service.stats();
            std::fprintf(stderr,
                         "stats: %llu batches, %llu points, "
                         "mean %.3f ms/batch (min %.3f, max %.3f), "
                         "%.0f points/s\n",
                         static_cast<unsigned long long>(stats.batches),
                         static_cast<unsigned long long>(stats.points),
                         stats.meanMs(), stats.minMs, stats.maxMs,
                         stats.pointsPerSecond());
            if (asyncMode) {
                std::fprintf(
                    stderr,
                    "async: %llu accepted, %llu shed, p99 %.3f ms\n",
                    static_cast<unsigned long long>(stats.requests),
                    static_cast<unsigned long long>(stats.rejected),
                    service.requestLatencyQuantileMs(0.99));
            }
        }
        if (!cli.statsOut.empty()) {
            obs::Snapshot snap = obs::Registry::global().snapshot();
            snap.merge(service.statsSnapshot());
            obs::writeStatsFile(cli.statsOut, snap);
        }
    } catch (const SerializationError &err) {
        fatal("cannot serve '", cli.modelPath, "': ", err.what());
    }
    return 0;
}
