/**
 * @file
 * acdse-serve: command-line prediction server front-end.
 *
 * Loads a model artifact (see serve/model_store.hh) and streams
 * predictions for CSV query batches read from a file or stdin. Each
 * input row is the 13 design-space parameters in Table 1 order:
 *
 *   width,ROB,IQ,LSQ,RF,RF rd,RF wr,bpred(K),BTB(K),branches,
 *   IL1(KB),DL1(KB),L2(KB)
 *
 * A header row and '#' comment lines are skipped. Output is CSV: the
 * 13 echoed parameters followed by one column per metric the artifact
 * carries. Rows are processed in batches (--batch) across the service
 * thread pool, so piping a large file through this binary exercises
 * the same hot path as bench_serve_throughput.
 *
 * Usage:
 *   acdse-serve --model trained.acdse [--input queries.csv]
 *               [--batch N] [--threads N] [--stats]
 *
 * Environment: ACDSE_SERVE_THREADS is honoured when --threads is not
 * given.
 */

#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "base/binary_io.hh"
#include "base/csv.hh"
#include "base/logging.hh"
#include "base/parse.hh"
#include "obs/stats_export.hh"
#include "serve/prediction_service.hh"

using namespace acdse;

namespace
{

struct CliOptions
{
    std::string modelPath;
    std::string inputPath = "-";
    std::size_t batch = 256;
    std::size_t threads = 0; // 0 = ServeOptions default
    bool printStats = false;
    std::string statsOut;       //!< acdse-stats-v1 dump path
    std::size_t statsEvery = 0; //!< periodic dump cadence in batches
};

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --model FILE [--input FILE|-] [--batch N]\n"
        "          [--threads N] [--stats] [--stats-out FILE]\n"
        "          [--stats-every N]\n"
        "\n"
        "Serve design-point predictions from a trained model artifact.\n"
        "Reads CSV rows of the 13 Table-1 parameters from --input\n"
        "(default stdin) and writes predictions as CSV to stdout.\n",
        argv0);
    std::exit(2);
}

CliOptions
parseArgs(int argc, char **argv)
{
    CliOptions options;
    auto value = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            fatal("missing value after ", argv[i]);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--model")) {
            options.modelPath = value(i);
        } else if (!std::strcmp(argv[i], "--input")) {
            options.inputPath = value(i);
        } else if (!std::strcmp(argv[i], "--batch")) {
            options.batch = static_cast<std::size_t>(
                parseU64OrDie("--batch", value(i)));
        } else if (!std::strcmp(argv[i], "--threads")) {
            options.threads = static_cast<std::size_t>(
                parseU64OrDie("--threads", value(i)));
        } else if (!std::strcmp(argv[i], "--stats")) {
            options.printStats = true;
        } else if (!std::strcmp(argv[i], "--stats-out")) {
            options.statsOut = value(i);
        } else if (!std::strcmp(argv[i], "--stats-every")) {
            options.statsEvery = static_cast<std::size_t>(
                parseU64OrDie("--stats-every", value(i)));
        } else if (!std::strcmp(argv[i], "--help") ||
                   !std::strcmp(argv[i], "-h")) {
            usage(argv[0]);
        } else {
            warn("unknown argument '", argv[i], "'");
            usage(argv[0]);
        }
    }
    if (options.modelPath.empty()) {
        warn("--model is required");
        usage(argv[0]);
    }
    if (options.batch == 0)
        fatal("--batch must be positive");
    if (options.statsEvery != 0 && options.statsOut.empty())
        fatal("--stats-every needs --stats-out");
    return options;
}

/**
 * Parse one CSV query row into a configuration; returns false for
 * header/comment rows. Illegal parameter values are fatal with the
 * offending line number, since silently serving a prediction for a
 * point outside the design space would be worse than stopping.
 */
bool
parseQuery(const std::string &line, std::size_t lineNo,
           MicroarchConfig &out)
{
    if (line.empty() || line[0] == '#')
        return false;
    const auto cells = splitCsvLine(line);
    if (cells.size() != kNumParams) {
        fatal("line ", lineNo, ": expected ", kNumParams,
              " comma-separated values, got ", cells.size());
    }
    std::array<int, kNumParams> values;
    for (std::size_t p = 0; p < kNumParams; ++p) {
        const auto parsed = parseI64(cells[p]);
        if (!parsed) {
            // A non-numeric *first* cell on the first line is a header
            // row; a non-numeric cell anywhere else is corrupt data and
            // must not be skipped silently.
            if (lineNo == 1 && p == 0)
                return false;
            fatal("line ", lineNo, ": '", cells[p],
                  "' is not an integer");
        }
        const ParamSpec &spec = paramSpec(static_cast<Param>(p));
        if (*parsed < INT_MIN || *parsed > INT_MAX ||
            !spec.contains(static_cast<int>(*parsed))) {
            fatal("line ", lineNo, ": ", *parsed,
                  " is not a legal value for ", spec.name);
        }
        values[p] = static_cast<int>(*parsed);
    }
    out = MicroarchConfig(values);
    return true;
}

void
writeHeader(const std::vector<Metric> &metrics)
{
    for (std::size_t p = 0; p < kNumParams; ++p)
        std::printf("%s%s", p ? "," : "",
                    paramName(static_cast<Param>(p)).c_str());
    for (Metric metric : metrics)
        std::printf(",%s", metricName(metric));
    std::printf("\n");
}

void
writeBatch(const std::vector<MicroarchConfig> &queries,
           const std::vector<PredictionRow> &rows,
           const std::vector<Metric> &metrics)
{
    for (std::size_t i = 0; i < queries.size(); ++i) {
        const auto &raw = queries[i].raw();
        for (std::size_t p = 0; p < kNumParams; ++p)
            std::printf("%s%d", p ? "," : "", raw[p]);
        for (Metric metric : metrics)
            std::printf(",%.17g", rows[i].get(metric));
        std::printf("\n");
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const CliOptions cli = parseArgs(argc, argv);

    ServeOptions serve_options = ServeOptions::fromEnvironment();
    if (cli.threads)
        serve_options.threads = cli.threads;
    // Periodic dumps come straight from the service (its private
    // registry); the final dump below also merges the global registry
    // for the pool/ metrics.
    serve_options.statsPath = cli.statsOut;
    serve_options.statsEveryBatches = cli.statsEvery;

    std::ifstream file;
    std::istream *in = &std::cin;
    if (cli.inputPath != "-") {
        file.open(cli.inputPath);
        if (!file)
            fatal("cannot open input '", cli.inputPath, "'");
        in = &file;
    }

    try {
        PredictionService service =
            PredictionService::fromFile(cli.modelPath, serve_options);
        const std::vector<Metric> metrics = service.metrics();
        inform("serving '", cli.modelPath, "' (",
               service.artifact().tag().empty()
                   ? "untagged"
                   : service.artifact().tag(),
               "), ", metrics.size(), " metrics, pool of ",
               service.poolThreads() + 1, " threads");
        writeHeader(metrics);

        std::vector<MicroarchConfig> batch;
        batch.reserve(cli.batch);
        std::string line;
        std::size_t line_no = 0;
        auto flush = [&] {
            if (batch.empty())
                return;
            const auto rows = service.predict(batch);
            writeBatch(batch, rows, metrics);
            batch.clear();
        };
        while (std::getline(*in, line)) {
            ++line_no;
            MicroarchConfig config;
            if (!parseQuery(line, line_no, config))
                continue;
            batch.push_back(config);
            if (batch.size() == cli.batch)
                flush();
        }
        flush();

        if (cli.printStats) {
            const ServiceStats stats = service.stats();
            std::fprintf(stderr,
                         "stats: %llu batches, %llu points, "
                         "mean %.3f ms/batch (min %.3f, max %.3f), "
                         "%.0f points/s\n",
                         static_cast<unsigned long long>(stats.batches),
                         static_cast<unsigned long long>(stats.points),
                         stats.meanMs(), stats.minMs, stats.maxMs,
                         stats.pointsPerSecond());
        }
        if (!cli.statsOut.empty()) {
            obs::Snapshot snap = obs::Registry::global().snapshot();
            snap.merge(service.statsSnapshot());
            obs::writeStatsFile(cli.statsOut, snap);
        }
    } catch (const SerializationError &err) {
        fatal("cannot serve '", cli.modelPath, "': ", err.what());
    }
    return 0;
}
