#!/usr/bin/env python3
"""Gate CI on benchmark results: fail when a measured metric drops
more than ``tolerance`` below its checked-in floor, or rises more
than ``tolerance`` above its checked-in ceiling.

Usage:
    check_bench_regression.py --baseline bench/baseline.json \
        [--train BENCH_train.json] [--campaign BENCH_campaign.json] \
        [--serve BENCH_serve.json] \
        [--serve-latency BENCH_serve_latency.json] \
        [--predict-batch BENCH_predict_batch.json] \
        [--explore BENCH_explore.json]
    check_bench_regression.py --self-test

``bench/baseline.json`` holds conservative *floors* (throughput:
higher is better) and *ceilings* (latency: lower is better), not
point measurements::

    {
      "tolerance": 0.20,
      "train": {"metrics": {"loo_folds_per_s_t1": 40.0, ...}},
      "serve_latency": {
        "metrics": {"serve_latency_pps": 100000.0},
        "ceilings": {"serve_latency_p99_us": 400.0}
      }
    }

A floor passes when ``measured >= floor * (1 - tolerance)``; a
ceiling passes when ``measured <= ceiling * (1 + tolerance)``.
Metrics present in a bench result but absent from the baseline are
reported but not gated (so new metrics can land before their gate
does).

Every bench result is schema-validated before gating: the file must
be an object with ``schema == "acdse-bench-v1"`` and a ``metrics``
object mapping names to finite numbers. The baseline itself is
validated the same way (numeric tolerance, per-bench sections with
numeric ``metrics``/``ceilings`` maps); a malformed file fails the
job rather than silently gating nothing.

``--self-test`` runs the embedded test cases (floor pass/fail,
ceiling pass/fail, missing metric, bad schema, malformed baseline,
ungated metric) and exits non-zero on any mismatch; CI runs it before
trusting the gate.

Baseline-ratcheting procedure
-----------------------------
Floors are deliberately below -- and ceilings above -- what CI
runners measure, so routine variance never fails a PR; the gate
exists to catch large regressions (a serialised hot loop, an
accidental debug build). To ratchet:

1. Collect the ``BENCH_*.json`` artifacts from several recent green
   runs of the ``bench-regression`` job (they are uploaded on every
   run).
2. For each gated floor take the *minimum* across those runs, then
   multiply by ~0.5; for each ceiling take the *maximum* and multiply
   by ~2 (latency quantiles are noisier than throughput -- p999 on a
   shared runner deserves the widest margin).
3. Edit ``bench/baseline.json`` with the new values in the same PR
   that justifies them (an optimisation PR raises floors / lowers
   ceilings; gates are only loosened with a comment in the PR
   explaining why the cost is accepted).

Speedup ratios (``loo_speedup_tmax_over_t1``) are only meaningful on
multi-core runners; the benches gate those themselves when the
hardware allows, so the baseline normally omits them.
"""

import argparse
import json
import math
import os
import sys
import tempfile

BENCH_SCHEMA = "acdse-bench-v1"

#: CLI flag -> (baseline section, default result path).
BENCHES = {
    "train": ("train", "BENCH_train.json"),
    "campaign": ("campaign", "BENCH_campaign.json"),
    "serve": ("serve", "BENCH_serve.json"),
    "serve_latency": ("serve_latency", "BENCH_serve_latency.json"),
    "predict_batch": ("predict_batch", "BENCH_predict_batch.json"),
    "explore": ("explore", "BENCH_explore.json"),
    "jobs": ("jobs", "BENCH_jobs.json"),
}


class ValidationError(Exception):
    """A bench result or baseline file failed schema validation."""


def load(path):
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _require_metric_map(owner, obj, key):
    """Validate an optional {name: finite number} map under ``key``."""
    metrics = obj.get(key, {})
    if not isinstance(metrics, dict):
        raise ValidationError(f"{owner}: '{key}' must be an object")
    for name, value in metrics.items():
        if not isinstance(value, (int, float)) or isinstance(
                value, bool) or not math.isfinite(value):
            raise ValidationError(
                f"{owner}: metric '{name}' must be a finite number, "
                f"got {value!r}")
    return metrics


def validate_bench_result(path, doc):
    """Check an acdse-bench-v1 document; return its metrics map."""
    if not isinstance(doc, dict):
        raise ValidationError(f"{path}: top level must be an object")
    schema = doc.get("schema")
    if schema != BENCH_SCHEMA:
        raise ValidationError(
            f"{path}: schema is {schema!r}, expected '{BENCH_SCHEMA}'")
    if "metrics" not in doc:
        raise ValidationError(f"{path}: missing 'metrics' object")
    return _require_metric_map(path, doc, "metrics")


def validate_baseline(path, doc):
    """Check the baseline document; return (tolerance, sections)."""
    if not isinstance(doc, dict):
        raise ValidationError(f"{path}: top level must be an object")
    tolerance = doc.get("tolerance", 0.20)
    if not isinstance(tolerance, (int, float)) or isinstance(
            tolerance, bool) or not 0.0 <= tolerance < 1.0:
        raise ValidationError(
            f"{path}: tolerance must be a number in [0, 1), got "
            f"{tolerance!r}")
    sections = {}
    for name, section in doc.items():
        if name.startswith("_") or name == "tolerance":
            continue
        if not isinstance(section, dict):
            raise ValidationError(
                f"{path}: section '{name}' must be an object")
        floors = _require_metric_map(f"{path}:{name}", section,
                                     "metrics")
        ceilings = _require_metric_map(f"{path}:{name}", section,
                                       "ceilings")
        overlap = set(floors) & set(ceilings)
        if overlap:
            raise ValidationError(
                f"{path}:{name}: {sorted(overlap)} appear as both "
                "floor and ceiling")
        sections[name] = (floors, ceilings)
    return float(tolerance), sections


def check_bench(name, section, result_path, tolerance, rows):
    """Append (metric, gate, measured, status) rows; return failures."""
    floors, ceilings = section
    if not os.path.exists(result_path):
        rows.append((name, "-", "-", f"MISSING {result_path}"))
        return 1
    try:
        measured = validate_bench_result(result_path,
                                         load(result_path))
    except (ValidationError, json.JSONDecodeError) as err:
        rows.append((name, "-", "-", f"BAD SCHEMA ({err})"))
        return 1
    failures = 0
    for metric in sorted(set(floors) | set(ceilings) | set(measured)):
        if metric in floors:
            gate = f">= {floors[metric]:.2f}"
            if metric not in measured:
                rows.append((metric, gate, "-",
                             "FAIL (not measured)"))
                failures += 1
                continue
            minimum = floors[metric] * (1.0 - tolerance)
            ok = measured[metric] >= minimum
            status = "ok" if ok else f"FAIL (< {minimum:.2f})"
        elif metric in ceilings:
            gate = f"<= {ceilings[metric]:.2f}"
            if metric not in measured:
                rows.append((metric, gate, "-",
                             "FAIL (not measured)"))
                failures += 1
                continue
            maximum = ceilings[metric] * (1.0 + tolerance)
            ok = measured[metric] <= maximum
            status = "ok" if ok else f"FAIL (> {maximum:.2f})"
        else:
            rows.append((metric, "-", f"{measured[metric]:.2f}",
                         "ungated"))
            continue
        rows.append((metric, gate, f"{measured[metric]:.2f}", status))
        failures += 0 if ok else 1
    return failures


def render(rows, tolerance, failures):
    header = ("metric", "gate", "measured", "status")
    widths = [max(len(str(row[i])) for row in rows + [header])
              for i in range(4)]
    lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths))]
    lines += ["  ".join(str(c).ljust(w) for c, w in zip(row, widths))
              for row in rows]
    verdict = ("OK: all gated metrics within "
               f"{tolerance:.0%} of their gates" if failures == 0 else
               f"FAIL: {failures} metric(s) regressed beyond "
               f"{tolerance:.0%} tolerance")
    return "\n".join(lines + ["", verdict])


def run_checks(args):
    try:
        tolerance, sections = validate_baseline(args.baseline,
                                                load(args.baseline))
    except (ValidationError, json.JSONDecodeError) as err:
        print(f"FAIL: baseline {args.baseline} is malformed: {err}")
        return 1

    rows = []
    failures = 0
    for flag, (section_name, _default) in BENCHES.items():
        result_path = getattr(args, flag)
        failures += check_bench(section_name,
                                sections.get(section_name, ({}, {})),
                                result_path, tolerance, rows)

    report = render(rows, tolerance, failures)
    print(report)

    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a", encoding="utf-8") as summary:
            summary.write("### Benchmark regression check\n\n```\n")
            summary.write(report)
            summary.write("\n```\n")

    return 1 if failures else 0


# ---------------------------------------------------------------------------
# Self-test: the gate is itself CI-gated.

def _self_test_cases():
    """Yield (description, baseline, result_or_None, expect_failures)."""
    base = {
        "tolerance": 0.2,
        "bench": {
            "metrics": {"pps": 1000.0},
            "ceilings": {"p99_us": 100.0},
        },
    }
    ok = {"schema": BENCH_SCHEMA,
          "metrics": {"pps": 900.0, "p99_us": 110.0, "extra": 5.0}}
    yield ("floor and ceiling pass within tolerance; extra ungated",
           base, ok, 0)
    yield ("floor fails below tolerance", base,
           {"schema": BENCH_SCHEMA,
            "metrics": {"pps": 700.0, "p99_us": 50.0}}, 1)
    yield ("ceiling fails above tolerance", base,
           {"schema": BENCH_SCHEMA,
            "metrics": {"pps": 2000.0, "p99_us": 121.0}}, 1)
    yield ("gated metric missing from result", base,
           {"schema": BENCH_SCHEMA, "metrics": {"pps": 2000.0}}, 1)
    yield ("wrong schema tag", base,
           {"schema": "nope", "metrics": {"pps": 2000.0}}, 1)
    yield ("non-numeric metric value", base,
           {"schema": BENCH_SCHEMA,
            "metrics": {"pps": "fast", "p99_us": 1.0}}, 1)
    yield ("missing result file", base, None, 1)
    yield ("malformed baseline: metric as both floor and ceiling",
           {"tolerance": 0.2,
            "bench": {"metrics": {"x": 1.0}, "ceilings": {"x": 2.0}}},
           ok, "baseline")
    yield ("malformed baseline: tolerance out of range",
           {"tolerance": 2.0, "bench": {"metrics": {"pps": 1.0}}},
           ok, "baseline")


def self_test():
    failures = 0
    with tempfile.TemporaryDirectory() as tmp:
        for i, (desc, baseline, result,
                expect) in enumerate(_self_test_cases()):
            base_path = os.path.join(tmp, f"baseline{i}.json")
            with open(base_path, "w", encoding="utf-8") as handle:
                json.dump(baseline, handle)
            result_path = os.path.join(tmp, f"result{i}.json")
            if result is not None:
                with open(result_path, "w",
                          encoding="utf-8") as handle:
                    json.dump(result, handle)

            if expect == "baseline":
                try:
                    validate_baseline(base_path, load(base_path))
                except ValidationError:
                    got = "baseline"
                else:
                    got = "accepted"
            else:
                tolerance, sections = validate_baseline(
                    base_path, load(base_path))
                rows = []
                got = check_bench("bench",
                                  sections.get("bench", ({}, {})),
                                  result_path, tolerance, rows)
            status = "ok" if got == expect else "FAIL"
            print(f"[{status}] {desc}: expected {expect!r}, "
                  f"got {got!r}")
            failures += 0 if got == expect else 1
    print(f"self-test: {failures} failure(s)")
    return 1 if failures else 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", default="bench/baseline.json")
    parser.add_argument("--self-test", action="store_true",
                        help="run the embedded gate tests and exit")
    for flag, (_section, default) in BENCHES.items():
        parser.add_argument("--" + flag.replace("_", "-"),
                            dest=flag, default=default)
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    return run_checks(args)


if __name__ == "__main__":
    sys.exit(main())
