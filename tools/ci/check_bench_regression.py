#!/usr/bin/env python3
"""Gate CI on benchmark throughput: fail when a measured metric drops
more than ``tolerance`` below its checked-in baseline floor.

Usage:
    check_bench_regression.py --baseline bench/baseline.json \
        [--train BENCH_train.json] [--serve BENCH_serve.json] \
        [--predict-batch BENCH_predict_batch.json] \
        [--explore BENCH_explore.json]

``bench/baseline.json`` holds conservative *floors*, not point
measurements::

    {
      "tolerance": 0.20,
      "train": {"metrics": {"loo_folds_per_s_t1": 40.0, ...}},
      "serve": {"metrics": {"serve_best_pps": 100000.0, ...}}
    }

A metric passes when ``measured >= floor * (1 - tolerance)``. Metrics
present in a bench result but absent from the baseline are reported
but not gated (so new metrics can land before their floor does).

Baseline-ratcheting procedure
-----------------------------
Floors are deliberately below what CI runners measure, so routine
variance never fails a PR; the gate exists to catch large regressions
(a serialised hot loop, an accidental debug build). To ratchet:

1. Collect the ``BENCH_*.json`` artifacts from several recent green
   runs of the ``bench-regression`` job (they are uploaded on every
   run).
2. For each gated metric take the *minimum* across those runs, then
   multiply by ~0.5 to absorb runner-to-runner variance.
3. Edit ``bench/baseline.json`` with the new floor in the same PR that
   justifies it (an optimisation PR raises floors; floors are only
   lowered with a comment in the PR explaining why the cost is
   accepted).

Speedup ratios (``loo_speedup_tmax_over_t1``) are only meaningful on
multi-core runners; the benches gate those themselves when the
hardware allows, so the baseline normally omits them.
"""

import argparse
import json
import os
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def check_bench(name, baseline, result_path, tolerance, rows):
    """Append (metric, floor, measured, status) rows; return failures."""
    floors = baseline.get(name, {}).get("metrics", {})
    if not os.path.exists(result_path):
        rows.append((name, "-", "-", f"MISSING {result_path}"))
        return 1
    result = load(result_path)
    if result.get("schema") != "acdse-bench-v1":
        rows.append((name, "-", "-",
                     f"BAD SCHEMA {result.get('schema')!r}"))
        return 1
    measured = result.get("metrics", {})
    failures = 0
    for metric in sorted(set(floors) | set(measured)):
        if metric not in floors:
            rows.append((metric, "-", f"{measured[metric]:.2f}",
                         "ungated"))
            continue
        if metric not in measured:
            rows.append((metric, f"{floors[metric]:.2f}", "-",
                         "FAIL (not measured)"))
            failures += 1
            continue
        minimum = floors[metric] * (1.0 - tolerance)
        ok = measured[metric] >= minimum
        rows.append((metric, f"{floors[metric]:.2f}",
                     f"{measured[metric]:.2f}",
                     "ok" if ok else f"FAIL (< {minimum:.2f})"))
        failures += 0 if ok else 1
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", default="bench/baseline.json")
    parser.add_argument("--train", default="BENCH_train.json")
    parser.add_argument("--serve", default="BENCH_serve.json")
    parser.add_argument("--predict-batch",
                        default="BENCH_predict_batch.json")
    parser.add_argument("--explore", default="BENCH_explore.json")
    args = parser.parse_args()

    baseline = load(args.baseline)
    tolerance = float(baseline.get("tolerance", 0.20))

    rows = []
    failures = 0
    failures += check_bench("train", baseline, args.train, tolerance,
                            rows)
    failures += check_bench("serve", baseline, args.serve, tolerance,
                            rows)
    failures += check_bench("predict_batch", baseline,
                            args.predict_batch, tolerance, rows)
    failures += check_bench("explore", baseline, args.explore,
                            tolerance, rows)

    header = ("metric", "baseline floor", "measured", "status")
    widths = [max(len(str(row[i])) for row in rows + [header])
              for i in range(4)]
    lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths))]
    lines += ["  ".join(str(c).ljust(w) for c, w in zip(row, widths))
              for row in rows]
    verdict = ("OK: all gated metrics within "
               f"{tolerance:.0%} of their floors" if failures == 0 else
               f"FAIL: {failures} metric(s) regressed beyond "
               f"{tolerance:.0%} tolerance")
    report = "\n".join(lines + ["", verdict])
    print(report)

    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a", encoding="utf-8") as summary:
            summary.write("### Benchmark regression check\n\n```\n")
            summary.write(report)
            summary.write("\n```\n")

    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
