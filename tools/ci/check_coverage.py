#!/usr/bin/env python3
"""Gate CI on line coverage of ``src/``: fail when the measured
fraction of executed lines drops below the checked-in floor.

Usage:
    check_coverage.py [--build-dir build-cov] [--root .]
        [--floor FRACTION] [--html coverage.html]
        [--summary-json coverage.json]

Requires a tree configured with ``-DACDSE_COVERAGE=ON`` (gcc
``--coverage``) whose tests have already run: the ``.gcda`` counters
next to each object file are the input. Only ``gcov`` itself is needed
(it ships with gcc) -- no gcovr/lcov. Every ``.gcno`` is exported as
JSON (``gcov --json-format --stdout``) and merged per source file:
a line is *executable* if any translation unit reports it, and
*covered* if any reports a nonzero count. Headers compiled into many
TUs are therefore counted once, with their best count.

The gate applies to ``src/`` only. Tests, tools and benches appear in
the report but never gate: the point is that the library is exercised,
not that the harness covers itself.

Floor-ratcheting procedure
--------------------------
``DEFAULT_FLOOR`` below is the enforced fraction. It is set a few
points under what CI measures so innocuous churn (a new error branch,
dead-code removal elsewhere) never fails an unrelated PR. To ratchet:

1. Read the measured total from the ``coverage`` job summary of a
   recent green run on main.
2. Set ``DEFAULT_FLOOR`` to roughly ``measured - 0.03``; never lower
   it without a comment in the PR accepting the loss.
3. A PR that adds a large untested subsystem should raise coverage or
   this floor will block it -- that is the feature, not a bug.
"""

import argparse
import html
import json
import os
import subprocess
import sys

DEFAULT_FLOOR = 0.92

SCHEMA = "acdse-coverage-v1"


def gcov_json(gcno, build_dir):
    """Export one .gcno as parsed gcov JSON (None on gcov failure)."""
    proc = subprocess.run(
        ["gcov", "--json-format", "--stdout", os.path.relpath(gcno, build_dir)],
        cwd=build_dir,
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        check=False,
    )
    if proc.returncode != 0 or not proc.stdout:
        return None
    try:
        return json.loads(proc.stdout)
    except json.JSONDecodeError:
        return None


def collect(build_dir, root):
    """Merge all .gcno exports into {relpath: {line: max_count}}."""
    gcnos = []
    for dirpath, _dirnames, filenames in os.walk(build_dir):
        for name in filenames:
            if name.endswith(".gcno"):
                gcnos.append(os.path.join(dirpath, name))
    if not gcnos:
        raise SystemExit(
            f"no .gcno files under {build_dir}: configure with "
            "-DACDSE_COVERAGE=ON and build first"
        )

    root = os.path.realpath(root)
    merged = {}
    for gcno in sorted(gcnos):
        doc = gcov_json(gcno, build_dir)
        if doc is None:
            continue
        cwd = doc.get("current_working_directory", build_dir)
        for entry in doc.get("files", []):
            path = entry.get("file", "")
            if not os.path.isabs(path):
                path = os.path.join(cwd, path)
            path = os.path.realpath(path)
            if not path.startswith(root + os.sep):
                continue  # system or third-party header
            rel = os.path.relpath(path, root)
            lines = merged.setdefault(rel, {})
            for line in entry.get("lines", []):
                number = line.get("line_number")
                count = line.get("count", 0)
                if number is None:
                    continue
                lines[number] = max(lines.get(number, 0), count)
    return merged


def directory_of(rel):
    """Report key: first two path components (src/obs, tests, ...)."""
    parts = rel.split(os.sep)
    return os.sep.join(parts[:2]) if parts[0] == "src" else parts[0]


def summarise(merged):
    """Return (per_file, per_dir) {key: [covered, executable]} maps."""
    per_file = {}
    per_dir = {}
    for rel, lines in sorted(merged.items()):
        executable = len(lines)
        covered = sum(1 for count in lines.values() if count > 0)
        per_file[rel] = [covered, executable]
        bucket = per_dir.setdefault(directory_of(rel), [0, 0])
        bucket[0] += covered
        bucket[1] += executable
    return per_file, per_dir


def ratio(pair):
    covered, executable = pair
    return covered / executable if executable else 1.0


def uncovered_ranges(lines, limit=12):
    """Compact 'l1-l2, l3, ...' list of uncovered lines for the report."""
    missed = sorted(n for n, count in lines.items() if count == 0)
    ranges = []
    for number in missed:
        if ranges and number == ranges[-1][1] + 1:
            ranges[-1][1] = number
        else:
            ranges.append([number, number])
    parts = [str(a) if a == b else f"{a}-{b}" for a, b in ranges]
    if len(parts) > limit:
        parts = parts[:limit] + [f"... +{len(parts) - limit} more"]
    return ", ".join(parts)


def text_report(per_dir, gated, floor):
    rows = [(key, f"{pair[0]}/{pair[1]}", f"{ratio(pair):7.2%}")
            for key, pair in sorted(per_dir.items())]
    rows.append(("src/ TOTAL (gated)", f"{gated[0]}/{gated[1]}",
                 f"{ratio(gated):7.2%}"))
    header = ("directory", "lines covered", "coverage")
    widths = [max(len(str(row[i])) for row in rows + [header])
              for i in range(3)]
    lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths))]
    lines += ["  ".join(str(c).ljust(w) for c, w in zip(row, widths))
              for row in rows]
    ok = ratio(gated) >= floor
    verdict = (
        f"OK: src/ line coverage {ratio(gated):.2%} >= floor {floor:.2%}"
        if ok else
        f"FAIL: src/ line coverage {ratio(gated):.2%} < floor {floor:.2%}"
    )
    return "\n".join(lines + ["", verdict]), ok


def html_report(per_file, per_dir, merged, gated, floor, path):
    """One self-contained HTML file: directory table + per-file rows."""
    def bar(fraction):
        colour = ("#2a4" if fraction >= floor else
                  "#c60" if fraction >= floor - 0.15 else "#c33")
        return (f'<td style="min-width:8em"><div style="background:'
                f'{colour};width:{fraction * 100:.0f}%">&nbsp;</div>'
                f"</td><td>{fraction:.2%}</td>")

    out = [
        "<!doctype html><meta charset='utf-8'>",
        "<title>acdse line coverage</title>",
        "<style>body{font:14px monospace}table{border-collapse:collapse}"
        "td,th{border:1px solid #ccc;padding:2px 8px;text-align:left}"
        "</style>",
        f"<h1>acdse line coverage (schema {SCHEMA})</h1>",
        f"<p>src/ gated total: <b>{ratio(gated):.2%}</b> "
        f"(floor {floor:.2%})</p>",
        "<h2>Per directory</h2><table>",
        "<tr><th>directory</th><th>covered</th><th>executable</th>"
        "<th></th><th>coverage</th></tr>",
    ]
    for key, pair in sorted(per_dir.items()):
        out.append(f"<tr><td>{html.escape(key)}</td><td>{pair[0]}</td>"
                   f"<td>{pair[1]}</td>{bar(ratio(pair))}</tr>")
    out.append("</table><h2>Per file</h2><table>")
    out.append("<tr><th>file</th><th>covered</th><th>executable</th>"
               "<th></th><th>coverage</th><th>uncovered lines</th></tr>")
    for rel, pair in sorted(per_file.items()):
        missed = uncovered_ranges(merged[rel])
        out.append(f"<tr><td>{html.escape(rel)}</td><td>{pair[0]}</td>"
                   f"<td>{pair[1]}</td>{bar(ratio(pair))}"
                   f"<td>{html.escape(missed)}</td></tr>")
    out.append("</table>")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(out))


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build-cov")
    parser.add_argument("--root", default=".")
    parser.add_argument("--floor", type=float, default=DEFAULT_FLOOR)
    parser.add_argument("--html", default="")
    parser.add_argument("--summary-json", default="",
                        help="write {schema, total, floor, per_dir} "
                             "JSON here (read by job_summary.py)")
    args = parser.parse_args()

    merged = collect(args.build_dir, args.root)
    per_file, per_dir = summarise(merged)
    gated = [0, 0]
    for rel, pair in per_file.items():
        if rel.startswith("src" + os.sep):
            gated[0] += pair[0]
            gated[1] += pair[1]
    if gated[1] == 0:
        raise SystemExit("no src/ lines in the coverage data")

    report, ok = text_report(per_dir, gated, args.floor)
    print(report)
    if args.summary_json:
        doc = {
            "schema": SCHEMA,
            "total": ratio(gated),
            "floor": args.floor,
            "ok": ok,
            "per_dir": {key: {"covered": pair[0],
                              "executable": pair[1],
                              "fraction": ratio(pair)}
                        for key, pair in sorted(per_dir.items())},
        }
        with open(args.summary_json, "w", encoding="utf-8") as handle:
            json.dump(doc, handle, indent=2)
        print(f"wrote {args.summary_json}")
    if args.html:
        html_report(per_file, per_dir, merged, gated, args.floor,
                    args.html)
        print(f"wrote {args.html}")

    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a", encoding="utf-8") as summary:
            summary.write("### Line coverage\n\n```\n")
            summary.write(report)
            summary.write("\n```\n")

    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
