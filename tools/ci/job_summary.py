#!/usr/bin/env python3
"""Publish a compact bench/coverage dashboard to the GitHub job
summary ($GITHUB_STEP_SUMMARY).

Usage:
    job_summary.py [--title TEXT] [--bench BENCH_a.json ...]
        [--coverage coverage.json] [--out PATH]

Inputs are the artifacts the other CI steps already produce:

 - ``--bench``: any number of ``acdse-bench-v1`` documents
   (``BENCH_*.json``); their ``metrics`` objects are rendered as one
   markdown table, one row per metric, grouped by bench name. Files
   that are missing or malformed get a warning row instead of failing
   the step -- the gating happened earlier in
   check_bench_regression.py; this step only reports.

 - ``--coverage``: the ``--summary-json`` output of
   check_coverage.py (schema ``acdse-coverage-v1``): total, floor and
   per-directory fractions.

``--out`` overrides the destination (default: the
``GITHUB_STEP_SUMMARY`` environment variable; when neither is set the
markdown goes to stdout, which is what local runs want).
"""

import argparse
import json
import os
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def bench_rows(paths):
    """Yield (bench, metric, value) rows; errors become warnings."""
    for path in paths:
        try:
            doc = load(path)
        except (OSError, json.JSONDecodeError) as err:
            yield ("?", os.path.basename(path), f"unreadable: {err}")
            continue
        if doc.get("schema") != "acdse-bench-v1":
            yield ("?", os.path.basename(path),
                   f"unexpected schema {doc.get('schema')!r}")
            continue
        bench = doc.get("bench", os.path.basename(path))
        metrics = doc.get("metrics", {})
        if not isinstance(metrics, dict):
            yield (bench, "-", "metrics is not an object")
            continue
        for name in sorted(metrics):
            value = metrics[name]
            if isinstance(value, float):
                text = f"{value:,.2f}"
            else:
                text = str(value)
            yield (bench, name, text)


def render(args):
    lines = [f"## {args.title}", ""]

    rows = list(bench_rows(args.bench))
    if rows:
        lines += ["### Benchmarks", "",
                  "| bench | metric | value |",
                  "| --- | --- | ---: |"]
        lines += [f"| {b} | {m} | {v} |" for b, m, v in rows]
        lines.append("")

    if args.coverage:
        try:
            cov = load(args.coverage)
        except (OSError, json.JSONDecodeError) as err:
            cov = None
            lines += [f"_coverage summary unreadable: {err}_", ""]
        if cov is not None:
            total = cov.get("total", 0.0)
            floor = cov.get("floor", 0.0)
            verdict = "✅" if cov.get("ok") else "❌"
            lines += ["### Coverage", "",
                      f"{verdict} src/ total **{total:.2%}** "
                      f"(floor {floor:.2%})", "",
                      "| directory | covered | executable | fraction |",
                      "| --- | ---: | ---: | ---: |"]
            for key, entry in sorted(
                    cov.get("per_dir", {}).items()):
                lines.append(
                    f"| {key} | {entry.get('covered', 0)} "
                    f"| {entry.get('executable', 0)} "
                    f"| {entry.get('fraction', 0.0):.2%} |")
            lines.append("")

    if len(lines) == 2:
        lines += ["_no artifacts supplied_", ""]
    return "\n".join(lines)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--title", default="CI summary")
    parser.add_argument("--bench", nargs="*", default=[],
                        help="acdse-bench-v1 JSON files")
    parser.add_argument("--coverage", default="",
                        help="check_coverage.py --summary-json output")
    parser.add_argument("--out", default="")
    args = parser.parse_args()

    markdown = render(args)
    out = args.out or os.environ.get("GITHUB_STEP_SUMMARY", "")
    if out:
        with open(out, "a", encoding="utf-8") as handle:
            handle.write(markdown + "\n")
    else:
        print(markdown)
    return 0


if __name__ == "__main__":
    sys.exit(main())
