#!/usr/bin/env python3
"""Project-specific lint rules that clang-tidy cannot express.

Run from anywhere:  python3 tools/lint/acdse_lint.py  [--root DIR]

Rules (suppress a single line with a trailing  // NOLINT(acdse-<rule>)):

  acdse-checked-parse    The C ato* family silently returns 0
                         on garbage; the strtol family wraps or needs
                         errno discipline nobody gets right. All text
                         -> number conversion goes through
                         src/base/parse.hh (parseU64/I64/F64[OrDie]).

  acdse-deterministic-rng
                         std::rand, srand and std::random_device (and
                         time()-derived seeds) make runs
                         unreproducible. Use acdse::Rng with an
                         explicit seed.

  acdse-atomic-writes    Artifact/cache files must appear atomically:
                         writes go through writeCsvAtomic() or the
                         model store's saveArtifact(), not raw
                         std::ofstream/fopen. (Allowlisted: the two
                         files that implement those primitives; tests
                         may write scratch files.)

  acdse-pragma-once      Every header uses #pragma once, not include
                         guards.

  acdse-no-assert-macro  ACDSE_ASSERT was replaced by ACDSE_CHECK /
                         ACDSE_DCHECK (base/check.hh); don't
                         reintroduce it.

  acdse-obs-span-in-hot-loop
                         obs::TraceSpan construction lexically inside
                         a for/while body in src/. Spans belong at
                         stage granularity (around a whole batch,
                         fold, or training run); a span per loop
                         iteration times the instrumentation, not the
                         work, and shows up in serving throughput.
                         Instrument the loop once from outside, or
                         record into a Histogram instead. (Worker
                         lambdas passed to parallelFor are fine: the
                         lambda body is the per-task stage, not an
                         inner loop.) Tests are exempt -- they
                         construct spans in loops to test them.

Exit status: 0 when clean, 1 when any finding is reported.
Run the embedded rule self-tests with  --self-test .
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

SOURCE_DIRS = ("src", "tools", "bench", "tests", "examples")
SOURCE_SUFFIXES = {".cc", ".cpp", ".hh", ".h"}

# Files allowed to do raw file writes: the atomic-write primitives
# themselves.
ATOMIC_WRITE_IMPLS = {
    Path("src/base/csv.cc"),
    Path("src/base/json.cc"),
    Path("src/serve/model_store.cc"),
}

NOLINT_RE = re.compile(r"NOLINT\(acdse-([a-z-]+)\)")

RULES = [
    (
        "checked-parse",
        re.compile(
            r"\b(?:std::)?(?:ato(?:i|l|ll|f)|"
            r"strtol|strtoll|strtoul|strtoull|strtod|strtof|strtold)"
            r"\s*\("
        ),
        "use the checked parsers in base/parse.hh "
        "(parseU64/parseI64/parseF64 or their OrDie forms)",
        None,
    ),
    (
        "deterministic-rng",
        re.compile(
            r"\b(?:std::rand\b|srand\s*\(|std::random_device\b|"
            r"seed\s*\(\s*time\s*\(|time\s*\(\s*(?:NULL|nullptr|0)\s*\))"
        ),
        "non-deterministic randomness; use acdse::Rng with an explicit "
        "seed",
        None,
    ),
    (
        "no-assert-macro",
        re.compile(r"\bACDSE_ASSERT\b"),
        "ACDSE_ASSERT is retired; use ACDSE_CHECK or ACDSE_DCHECK from "
        "base/check.hh",
        None,
    ),
]


LOOP_HEADER_RE = re.compile(r"\b(?:for|while)\s*\(")
SPAN_CTOR_RE = re.compile(r"\bTraceSpan\s+\w|\bTraceSpan\s*[({]")


def find_spans_in_loops(lines: list[str]) -> list[int]:
    """Line numbers where a TraceSpan is constructed inside a loop.

    A deliberately lexical scan: brace depth is tracked across the
    file, and every ``{`` that follows a ``for``/``while`` header opens
    a loop body until its matching ``}``. Lambda bodies open plain
    (non-loop) scopes, so spans in parallelFor workers don't flag.
    Comments and string literals are stripped line-by-line first, which
    is as much C++ parsing as a lint this size should attempt.
    """
    findings: list[int] = []
    loop_depths: list[int] = []  # brace depth at each open loop body
    depth = 0
    parens = 0
    pending_loop = False  # saw a loop header, waiting for its '{'
    in_block_comment = False

    for lineno, raw in enumerate(lines, 1):
        line = raw
        if in_block_comment:
            end = line.find("*/")
            if end < 0:
                continue
            line = line[end + 2:]
            in_block_comment = False
        line = re.sub(r'"(?:[^"\\]|\\.)*"', '""', line)
        line = re.sub(r"'(?:[^'\\]|\\.)'", "''", line)
        line = re.sub(r"//.*", "", line)
        while True:
            start = line.find("/*")
            if start < 0:
                break
            end = line.find("*/", start + 2)
            if end < 0:
                line = line[:start]
                in_block_comment = True
                break
            line = line[:start] + line[end + 2:]

        # A span on the same line as a loop header covers both braced
        # one-liners and brace-less single-statement bodies.
        header_here = bool(LOOP_HEADER_RE.search(line))
        if SPAN_CTOR_RE.search(line) and (
            loop_depths or header_here or pending_loop
        ):
            findings.append(lineno)
        if header_here:
            pending_loop = True

        for ch in line:
            if ch == "(":
                parens += 1
            elif ch == ")":
                parens -= 1
            elif ch == "{":
                if pending_loop:
                    loop_depths.append(depth)
                    pending_loop = False
                depth += 1
            elif ch == "}":
                depth -= 1
                if loop_depths and depth == loop_depths[-1]:
                    loop_depths.pop()
            elif ch == ";" and pending_loop and parens == 0:
                # `for (...) stmt;` without braces (or a do-while
                # tail): the body is over, nothing was pushed.
                pending_loop = False
    return findings


def lint_file(root: Path, rel: Path) -> list[str]:
    findings: list[str] = []
    try:
        text = (root / rel).read_text(encoding="utf-8")
    except UnicodeDecodeError:
        return [f"{rel}:1: [acdse-encoding] file is not valid UTF-8"]
    lines = text.splitlines()

    top = rel.parts[0] if rel.parts else ""
    raw_write_banned = (
        top in ("src", "tools", "bench", "examples")
        and rel not in ATOMIC_WRITE_IMPLS
    )

    for lineno, line in enumerate(lines, 1):
        suppressed = {m.group(1) for m in NOLINT_RE.finditer(line)}

        for name, pattern, message, _ in RULES:
            if name in suppressed:
                continue
            if pattern.search(line):
                findings.append(
                    f"{rel}:{lineno}: [acdse-{name}] {message}"
                )

        if (
            raw_write_banned
            and "atomic-writes" not in suppressed
            and re.search(r"\bstd::ofstream\b|\bfopen\s*\(", line)
        ):
            findings.append(
                f"{rel}:{lineno}: [acdse-atomic-writes] raw file "
                "writes bypass crash-safety; use writeCsvAtomic() or "
                "saveArtifact() (base/csv.hh, serve/model_store.hh)"
            )

    # Hot-loop span rule: src/ only; tests construct spans in loops on
    # purpose (they are testing the spans).
    if top == "src":
        for lineno in find_spans_in_loops(lines):
            if "obs-span-in-hot-loop" in {
                m.group(1) for m in NOLINT_RE.finditer(lines[lineno - 1])
            }:
                continue
            findings.append(
                f"{rel}:{lineno}: [acdse-obs-span-in-hot-loop] "
                "TraceSpan constructed inside a loop body; spans are "
                "stage-granular -- hoist it out of the loop or record "
                "into an obs::Histogram instead"
            )

    if rel.suffix in (".hh", ".h"):
        directives = [
            l.strip() for l in lines if l.strip().startswith("#")
        ]
        if not directives or directives[0] != "#pragma once":
            findings.append(
                f"{rel}:1: [acdse-pragma-once] headers must open with "
                "#pragma once (before any other directive)"
            )

    return findings


SELF_TEST_CASES = [
    # (name, expect_finding_lines, snippet)
    (
        "span in for body flags",
        [2],
        """for (std::size_t i = 0; i < n; ++i) {
    const obs::TraceSpan span(stage);
    work(i);
}""",
    ),
    (
        "span in while body flags",
        [2],
        """while (running) {
    obs::TraceSpan span(registry, "serve/poll");
}""",
    ),
    (
        "brace-less loop body flags",
        [2],
        """for (auto &item : items)
    const obs::TraceSpan span(stage);""",
    ),
    (
        "span in nested if inside loop flags",
        [3],
        """for (std::size_t i = 0; i < n; ++i) {
    if (slow(i)) {
        const obs::TraceSpan span(stage);
    }
}""",
    ),
    (
        "span before and after a loop is clean",
        [],
        """const obs::TraceSpan outer(stage);
for (std::size_t i = 0; i < n; ++i) {
    work(i);
}
const obs::TraceSpan tail(stage);""",
    ),
    (
        "span in parallelFor lambda is clean",
        [],
        """pool.parallelFor(0, n, [&](std::size_t i) {
    const obs::TraceSpan span(*stages[i]);
    work(i);
});""",
    ),
    (
        "loop after do-while tail is tracked correctly",
        [],
        """do {
    work();
} while (again());
const obs::TraceSpan span(stage);""",
    ),
    (
        "commented span in loop is clean",
        [],
        """for (std::size_t i = 0; i < n; ++i) {
    // const obs::TraceSpan span(stage);
    work(i);
}""",
    ),
]


def self_test() -> int:
    failures = 0
    for name, expected, snippet in SELF_TEST_CASES:
        got = find_spans_in_loops(snippet.splitlines())
        status = "ok" if got == expected else "FAIL"
        failures += got != expected
        print(f"{status}: {name} (expected {expected}, got {got})")
    print(
        f"acdse_lint --self-test: {len(SELF_TEST_CASES)} cases, "
        f"{failures} failure(s)",
        file=sys.stderr,
    )
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        type=Path,
        default=Path(__file__).resolve().parents[2],
        help="repository root (default: inferred from this script)",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="run the embedded rule self-tests and exit",
    )
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    files: list[Path] = []
    for top in SOURCE_DIRS:
        base = args.root / top
        if not base.is_dir():
            continue
        files.extend(
            p.relative_to(args.root)
            for p in sorted(base.rglob("*"))
            if p.suffix in SOURCE_SUFFIXES and p.is_file()
        )

    findings: list[str] = []
    for rel in files:
        findings.extend(lint_file(args.root, rel))

    for finding in findings:
        print(finding)
    print(
        f"acdse_lint: {len(files)} files checked, "
        f"{len(findings)} finding(s)",
        file=sys.stderr,
    )
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
