#!/usr/bin/env python3
"""Project-specific lint rules that clang-tidy cannot express.

Run from anywhere:  python3 tools/lint/acdse_lint.py  [--root DIR]

Rules (suppress a single line with a trailing  // NOLINT(acdse-<rule>)):

  acdse-checked-parse    The C ato* family silently returns 0
                         on garbage; the strtol family wraps or needs
                         errno discipline nobody gets right. All text
                         -> number conversion goes through
                         src/base/parse.hh (parseU64/I64/F64[OrDie]).

  acdse-deterministic-rng
                         std::rand, srand and std::random_device (and
                         time()-derived seeds) make runs
                         unreproducible. Use acdse::Rng with an
                         explicit seed.

  acdse-atomic-writes    Artifact/cache files must appear atomically:
                         writes go through writeCsvAtomic() or the
                         model store's saveArtifact(), not raw
                         std::ofstream/fopen. (Allowlisted: the two
                         files that implement those primitives; tests
                         may write scratch files.)

  acdse-pragma-once      Every header uses #pragma once, not include
                         guards.

  acdse-no-assert-macro  ACDSE_ASSERT was replaced by ACDSE_CHECK /
                         ACDSE_DCHECK (base/check.hh); don't
                         reintroduce it.

Exit status: 0 when clean, 1 when any finding is reported.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

SOURCE_DIRS = ("src", "tools", "bench", "tests", "examples")
SOURCE_SUFFIXES = {".cc", ".cpp", ".hh", ".h"}

# Files allowed to do raw file writes: the atomic-write primitives
# themselves.
ATOMIC_WRITE_IMPLS = {
    Path("src/base/csv.cc"),
    Path("src/base/json.cc"),
    Path("src/serve/model_store.cc"),
}

NOLINT_RE = re.compile(r"NOLINT\(acdse-([a-z-]+)\)")

RULES = [
    (
        "checked-parse",
        re.compile(
            r"\b(?:std::)?(?:ato(?:i|l|ll|f)|"
            r"strtol|strtoll|strtoul|strtoull|strtod|strtof|strtold)"
            r"\s*\("
        ),
        "use the checked parsers in base/parse.hh "
        "(parseU64/parseI64/parseF64 or their OrDie forms)",
        None,
    ),
    (
        "deterministic-rng",
        re.compile(
            r"\b(?:std::rand\b|srand\s*\(|std::random_device\b|"
            r"seed\s*\(\s*time\s*\(|time\s*\(\s*(?:NULL|nullptr|0)\s*\))"
        ),
        "non-deterministic randomness; use acdse::Rng with an explicit "
        "seed",
        None,
    ),
    (
        "no-assert-macro",
        re.compile(r"\bACDSE_ASSERT\b"),
        "ACDSE_ASSERT is retired; use ACDSE_CHECK or ACDSE_DCHECK from "
        "base/check.hh",
        None,
    ),
]


def lint_file(root: Path, rel: Path) -> list[str]:
    findings: list[str] = []
    try:
        text = (root / rel).read_text(encoding="utf-8")
    except UnicodeDecodeError:
        return [f"{rel}:1: [acdse-encoding] file is not valid UTF-8"]
    lines = text.splitlines()

    top = rel.parts[0] if rel.parts else ""
    raw_write_banned = (
        top in ("src", "tools", "bench", "examples")
        and rel not in ATOMIC_WRITE_IMPLS
    )

    for lineno, line in enumerate(lines, 1):
        suppressed = {m.group(1) for m in NOLINT_RE.finditer(line)}

        for name, pattern, message, _ in RULES:
            if name in suppressed:
                continue
            if pattern.search(line):
                findings.append(
                    f"{rel}:{lineno}: [acdse-{name}] {message}"
                )

        if (
            raw_write_banned
            and "atomic-writes" not in suppressed
            and re.search(r"\bstd::ofstream\b|\bfopen\s*\(", line)
        ):
            findings.append(
                f"{rel}:{lineno}: [acdse-atomic-writes] raw file "
                "writes bypass crash-safety; use writeCsvAtomic() or "
                "saveArtifact() (base/csv.hh, serve/model_store.hh)"
            )

    if rel.suffix in (".hh", ".h"):
        directives = [
            l.strip() for l in lines if l.strip().startswith("#")
        ]
        if not directives or directives[0] != "#pragma once":
            findings.append(
                f"{rel}:1: [acdse-pragma-once] headers must open with "
                "#pragma once (before any other directive)"
            )

    return findings


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        type=Path,
        default=Path(__file__).resolve().parents[2],
        help="repository root (default: inferred from this script)",
    )
    args = parser.parse_args()

    files: list[Path] = []
    for top in SOURCE_DIRS:
        base = args.root / top
        if not base.is_dir():
            continue
        files.extend(
            p.relative_to(args.root)
            for p in sorted(base.rglob("*"))
            if p.suffix in SOURCE_SUFFIXES and p.is_file()
        )

    findings: list[str] = []
    for rel in files:
        findings.extend(lint_file(args.root, rel))

    for finding in findings:
        print(finding)
    print(
        f"acdse_lint: {len(files)} files checked, "
        f"{len(findings)} finding(s)",
        file=sys.stderr,
    )
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
