#!/usr/bin/env python3
"""Project-specific lint rules that clang-tidy cannot express.

Run from anywhere:  python3 tools/lint/acdse_lint.py  [--root DIR]

Two engines implement the rules:

  ast     AST-grounded (tools/lint/ast_engine.py): parses every
          translation unit in build/compile_commands.json with
          libclang, so rules see real declarations, call targets,
          loop/lambda ancestry and macro expansions. Requires the
          python clang bindings + a loadable libclang + a configured
          build tree.

  regex   Line-oriented patterns, no dependencies beyond python.
          Weaker (substrings, lexical brace tracking) but always
          available; it covers the same legacy rules and a lexical
          approximation of acdse-raw-mutex.

--engine auto (the default) uses the AST engine when it can and falls
back to regex with a note; CI passes --require-ast so the stronger
engine cannot silently rot. The AST engine additionally implements
rules the regex engine cannot express at all (ref-capture writes in
parallelFor workers, mutable local statics).

Rules (suppress a single line with a trailing  // NOLINT(acdse-<rule>)):

  acdse-checked-parse    The C ato* family silently returns 0
                         on garbage; the strtol family wraps or needs
                         errno discipline nobody gets right. All text
                         -> number conversion goes through
                         src/base/parse.hh (parseU64/I64/F64[OrDie]).

  acdse-deterministic-rng
                         std::rand, srand and std::random_device (and
                         time()-derived seeds) make runs
                         unreproducible. Use acdse::Rng with an
                         explicit seed.

  acdse-atomic-writes    Artifact/cache files must appear atomically:
                         writes go through writeCsvAtomic() or the
                         model store's saveArtifact(), not raw
                         std::ofstream/fopen. (Allowlisted: the two
                         files that implement those primitives; tests
                         may write scratch files.)

  acdse-pragma-once      Every header uses #pragma once, not include
                         guards.

  acdse-no-assert-macro  ACDSE_ASSERT was replaced by ACDSE_CHECK /
                         ACDSE_DCHECK (base/check.hh); don't
                         reintroduce it.

  acdse-obs-span-in-hot-loop
                         obs::TraceSpan construction inside a
                         for/while body in src/. Spans belong at
                         stage granularity (around a whole batch,
                         fold, or training run); a span per loop
                         iteration times the instrumentation, not the
                         work, and shows up in serving throughput.
                         Instrument the loop once from outside, or
                         record into a Histogram instead. (Worker
                         lambdas passed to parallelFor are fine: the
                         lambda body is the per-task stage, not an
                         inner loop.) Tests are exempt -- they
                         construct spans in loops to test them.

  acdse-raw-mutex        std::mutex / std::shared_mutex /
                         std::condition_variable declared in src/
                         outside base/sync.hh. Locking through the
                         raw types is invisible to Clang's
                         -Wthread-safety analysis; use the annotated
                         wrappers (Mutex, SharedMutex, MutexLock,
                         ReaderLock, CondVar) so unguarded access is
                         a compile error.

  acdse-parallelfor-ref-capture   (AST engine only)
                         A by-reference capture written directly
                         (x = / x += / ++x) inside a lambda passed to
                         ThreadPool::parallelFor, in src/, bench/ or
                         tools/. Racy and order-dependent; write to an
                         index-addressed slot (out[i] = ...) or an
                         atomic, the project's deterministic-parallel
                         patterns. Tests are exempt (they provoke
                         these shapes on purpose).

  acdse-local-static     (AST engine only)
                         A mutable (non-const, non-atomic)
                         function-local static in src/: hidden shared
                         state that ACDSE_GUARDED_BY cannot see.
                         Hoist it behind a sync.hh-guarded class, make
                         it const/atomic, or NOLINT with a reason.

Exit status: 0 when clean, 1 when any finding is reported, 2 when
--require-ast (or --engine ast) is set and the AST engine is
unavailable. Run the embedded rule self-tests with  --self-test .
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

SOURCE_DIRS = ("src", "tools", "bench", "tests", "examples")
SOURCE_SUFFIXES = {".cc", ".cpp", ".hh", ".h"}

# Lint fixtures are deliberately rule-violating inputs for the AST
# engine's self-test; they are not project sources.
FIXTURE_DIR = Path("tools/lint/fixtures")

# Files allowed to do raw file writes: the atomic-write primitives
# themselves.
ATOMIC_WRITE_IMPLS = {
    Path("src/base/csv.cc"),
    Path("src/base/json.cc"),
    Path("src/serve/model_store.cc"),
}

# The one file allowed to name the raw standard synchronisation types:
# the annotated wrappers that everything else must use.
RAW_SYNC_IMPL = Path("src/base/sync.hh")

NOLINT_RE = re.compile(r"NOLINT\(acdse-([a-z-]+)\)")

RULES = [
    (
        "checked-parse",
        re.compile(
            r"\b(?:std::)?(?:ato(?:i|l|ll|f)|"
            r"strtol|strtoll|strtoul|strtoull|strtod|strtof|strtold)"
            r"\s*\("
        ),
        "use the checked parsers in base/parse.hh "
        "(parseU64/parseI64/parseF64 or their OrDie forms)",
        None,
    ),
    (
        "deterministic-rng",
        re.compile(
            r"\b(?:std::rand\b|srand\s*\(|std::random_device\b|"
            r"seed\s*\(\s*time\s*\(|time\s*\(\s*(?:NULL|nullptr|0)\s*\))"
        ),
        "non-deterministic randomness; use acdse::Rng with an explicit "
        "seed",
        None,
    ),
    (
        "no-assert-macro",
        re.compile(r"\bACDSE_ASSERT\b"),
        "ACDSE_ASSERT is retired; use ACDSE_CHECK or ACDSE_DCHECK from "
        "base/check.hh",
        None,
    ),
]

# Rules the AST engine re-implements exactly; the lexical versions are
# skipped while it is active so a line cannot double-report.
AST_REPLACES = {
    "deterministic-rng",
    "no-assert-macro",
    "obs-span-in-hot-loop",
    "raw-mutex",
}

RAW_MUTEX_RE = re.compile(
    r"\bstd::(?:mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"condition_variable(?:_any)?)\b"
)
RAW_MUTEX_MESSAGE = (
    "raw standard mutex/condition-variable type: locking through it is "
    "invisible to -Wthread-safety; use the annotated wrappers in "
    "base/sync.hh"
)


LOOP_HEADER_RE = re.compile(r"\b(?:for|while)\s*\(")
SPAN_CTOR_RE = re.compile(r"\bTraceSpan\s+\w|\bTraceSpan\s*[({]")


def find_spans_in_loops(lines: list[str]) -> list[int]:
    """Line numbers where a TraceSpan is constructed inside a loop.

    A deliberately lexical scan: brace depth is tracked across the
    file, and every ``{`` that follows a ``for``/``while`` header opens
    a loop body until its matching ``}``. Lambda bodies open plain
    (non-loop) scopes, so spans in parallelFor workers don't flag.
    Comments and string literals are stripped line-by-line first, which
    is as much C++ parsing as a lint this size should attempt. (The AST
    engine replaces this with real loop/lambda ancestry.)
    """
    findings: list[int] = []
    loop_depths: list[int] = []  # brace depth at each open loop body
    depth = 0
    parens = 0
    pending_loop = False  # saw a loop header, waiting for its '{'
    in_block_comment = False

    for lineno, raw in enumerate(lines, 1):
        line = raw
        if in_block_comment:
            end = line.find("*/")
            if end < 0:
                continue
            line = line[end + 2:]
            in_block_comment = False
        line = re.sub(r'"(?:[^"\\]|\\.)*"', '""', line)
        line = re.sub(r"'(?:[^'\\]|\\.)'", "''", line)
        line = re.sub(r"//.*", "", line)
        while True:
            start = line.find("/*")
            if start < 0:
                break
            end = line.find("*/", start + 2)
            if end < 0:
                line = line[:start]
                in_block_comment = True
                break
            line = line[:start] + line[end + 2:]

        # A span on the same line as a loop header covers both braced
        # one-liners and brace-less single-statement bodies.
        header_here = bool(LOOP_HEADER_RE.search(line))
        if SPAN_CTOR_RE.search(line) and (
            loop_depths or header_here or pending_loop
        ):
            findings.append(lineno)
        if header_here:
            pending_loop = True

        for ch in line:
            if ch == "(":
                parens += 1
            elif ch == ")":
                parens -= 1
            elif ch == "{":
                if pending_loop:
                    loop_depths.append(depth)
                    pending_loop = False
                depth += 1
            elif ch == "}":
                depth -= 1
                if loop_depths and depth == loop_depths[-1]:
                    loop_depths.pop()
            elif ch == ";" and pending_loop and parens == 0:
                # `for (...) stmt;` without braces (or a do-while
                # tail): the body is over, nothing was pushed.
                pending_loop = False
    return findings


def lint_file(root: Path, rel: Path, ast_active: bool = False) -> list[str]:
    findings: list[str] = []
    try:
        text = (root / rel).read_text(encoding="utf-8")
    except UnicodeDecodeError:
        return [f"{rel}:1: [acdse-encoding] file is not valid UTF-8"]
    lines = text.splitlines()

    top = rel.parts[0] if rel.parts else ""
    raw_write_banned = (
        top in ("src", "tools", "bench", "examples")
        and rel not in ATOMIC_WRITE_IMPLS
    )
    raw_sync_banned = (
        not ast_active and top == "src" and rel != RAW_SYNC_IMPL
    )

    for lineno, line in enumerate(lines, 1):
        suppressed = {m.group(1) for m in NOLINT_RE.finditer(line)}

        for name, pattern, message, _ in RULES:
            if ast_active and name in AST_REPLACES:
                continue
            if name in suppressed:
                continue
            if pattern.search(line):
                findings.append(
                    f"{rel}:{lineno}: [acdse-{name}] {message}"
                )

        if (
            raw_write_banned
            and "atomic-writes" not in suppressed
            and re.search(r"\bstd::ofstream\b|\bfopen\s*\(", line)
        ):
            findings.append(
                f"{rel}:{lineno}: [acdse-atomic-writes] raw file "
                "writes bypass crash-safety; use writeCsvAtomic() or "
                "saveArtifact() (base/csv.hh, serve/model_store.hh)"
            )

        if (
            raw_sync_banned
            and "raw-mutex" not in suppressed
            and RAW_MUTEX_RE.search(line)
        ):
            findings.append(
                f"{rel}:{lineno}: [acdse-raw-mutex] {RAW_MUTEX_MESSAGE}"
            )

    # Hot-loop span rule: src/ only; tests construct spans in loops on
    # purpose (they are testing the spans).
    if top == "src" and not ast_active:
        for lineno in find_spans_in_loops(lines):
            if "obs-span-in-hot-loop" in {
                m.group(1) for m in NOLINT_RE.finditer(lines[lineno - 1])
            }:
                continue
            findings.append(
                f"{rel}:{lineno}: [acdse-obs-span-in-hot-loop] "
                "TraceSpan constructed inside a loop body; spans are "
                "stage-granular -- hoist it out of the loop or record "
                "into an obs::Histogram instead"
            )

    if rel.suffix in (".hh", ".h"):
        directives = [
            l.strip() for l in lines if l.strip().startswith("#")
        ]
        if not directives or directives[0] != "#pragma once":
            findings.append(
                f"{rel}:1: [acdse-pragma-once] headers must open with "
                "#pragma once (before any other directive)"
            )

    return findings


SELF_TEST_CASES = [
    # (name, expect_finding_lines, snippet)
    (
        "span in for body flags",
        [2],
        """for (std::size_t i = 0; i < n; ++i) {
    const obs::TraceSpan span(stage);
    work(i);
}""",
    ),
    (
        "span in while body flags",
        [2],
        """while (running) {
    obs::TraceSpan span(registry, "serve/poll");
}""",
    ),
    (
        "brace-less loop body flags",
        [2],
        """for (auto &item : items)
    const obs::TraceSpan span(stage);""",
    ),
    (
        "span in nested if inside loop flags",
        [3],
        """for (std::size_t i = 0; i < n; ++i) {
    if (slow(i)) {
        const obs::TraceSpan span(stage);
    }
}""",
    ),
    (
        "span before and after a loop is clean",
        [],
        """const obs::TraceSpan outer(stage);
for (std::size_t i = 0; i < n; ++i) {
    work(i);
}
const obs::TraceSpan tail(stage);""",
    ),
    (
        "span in parallelFor lambda is clean",
        [],
        """pool.parallelFor(0, n, [&](std::size_t i) {
    const obs::TraceSpan span(*stages[i]);
    work(i);
});""",
    ),
    (
        "loop after do-while tail is tracked correctly",
        [],
        """do {
    work();
} while (again());
const obs::TraceSpan span(stage);""",
    ),
    (
        "commented span in loop is clean",
        [],
        """for (std::size_t i = 0; i < n; ++i) {
    // const obs::TraceSpan span(stage);
    work(i);
}""",
    ),
]

# (name, pattern matches line) cases for the single-line regex rules.
LINE_RULE_CASES = [
    ("std::mutex member flags", RAW_MUTEX_RE,
     "    std::mutex mutex_;", True),
    ("std::shared_mutex flags", RAW_MUTEX_RE,
     "    mutable std::shared_mutex mutex_;", True),
    ("std::condition_variable flags", RAW_MUTEX_RE,
     "    std::condition_variable cv_;", True),
    ("unique_lock over std::mutex flags", RAW_MUTEX_RE,
     "    std::unique_lock<std::mutex> lock(m);", True),
    ("annotated wrapper types are clean", RAW_MUTEX_RE,
     "    Mutex mutex_; SharedMutex rw_; CondVar cv_;", False),
    ("atoi flags", RULES[0][1], "int v = atoi(s);", True),
    ("parseU64 is clean", RULES[0][1],
     "const auto v = parseU64OrDie(name, s);", False),
    ("std::random_device flags", RULES[1][1],
     "std::random_device rd;", True),
]


def self_test(root: Path, require_ast: bool = False) -> int:
    failures = 0
    for name, expected, snippet in SELF_TEST_CASES:
        got = find_spans_in_loops(snippet.splitlines())
        status = "ok" if got == expected else "FAIL"
        failures += got != expected
        print(f"{status}: {name} (expected {expected}, got {got})")
    for name, pattern, line, expected in LINE_RULE_CASES:
        got = bool(pattern.search(line))
        status = "ok" if got == expected else "FAIL"
        failures += got != expected
        print(f"{status}: {name} (expected {expected}, got {got})")
    regex_cases = len(SELF_TEST_CASES) + len(LINE_RULE_CASES)

    import ast_engine

    ast_cases = 0
    reason = ast_engine.availability()
    if reason is None:
        failures += ast_engine.run_self_test(root)
        ast_cases += len(ast_engine.SELF_TEST_CASES)
        fixture_dir = root / FIXTURE_DIR
        for fixture in sorted(fixture_dir.glob("*.cc")):
            ast_cases += 1
            problems = ast_engine.check_fixture(
                root, fixture, f"src/lint_fixtures/{fixture.name}")
            status = "ok" if not problems else "FAIL"
            failures += bool(problems)
            print(f"{status}: [ast] fixture {fixture.name}")
            for problem in problems:
                print(f"    {problem}")
    else:
        message = f"AST self-test cases skipped: {reason}"
        if require_ast:
            print(f"FAIL: {message}")
            failures += 1
        else:
            print(f"note: {message}", file=sys.stderr)

    print(
        f"acdse_lint --self-test: {regex_cases} regex + {ast_cases} AST "
        f"cases, {failures} failure(s)",
        file=sys.stderr,
    )
    return 1 if failures else 0


def resolve_compile_db(root: Path, arg: Path | None) -> Path | None:
    """Directory containing compile_commands.json, or None."""
    candidate = arg if arg is not None else root / "build"
    if not candidate.is_absolute():
        candidate = root / candidate
    if candidate.name == "compile_commands.json":
        candidate = candidate.parent
    if (candidate / "compile_commands.json").is_file():
        return candidate
    return None


def ast_suppressed(root: Path, rel: str, lineno: int, rule: str,
                   cache: dict) -> bool:
    """Apply the trailing-NOLINT convention to an AST finding."""
    if rel not in cache:
        try:
            cache[rel] = (root / rel).read_text(
                encoding="utf-8").splitlines()
        except OSError:
            cache[rel] = []
    lines = cache[rel]
    if 1 <= lineno <= len(lines):
        return rule in {
            m.group(1) for m in NOLINT_RE.finditer(lines[lineno - 1])
        }
    return False


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        type=Path,
        default=Path(__file__).resolve().parents[2],
        help="repository root (default: inferred from this script)",
    )
    parser.add_argument(
        "--engine",
        choices=("auto", "ast", "regex"),
        default="auto",
        help="auto: AST when libclang + compile_commands.json are "
        "available, else regex fallback (default); ast: AST or die; "
        "regex: lexical rules only",
    )
    parser.add_argument(
        "--compile-commands",
        type=Path,
        default=None,
        metavar="DIR",
        help="build directory (or compile_commands.json path) for the "
        "AST engine; default: <root>/build",
    )
    parser.add_argument(
        "--require-ast",
        action="store_true",
        help="exit 2 instead of falling back when the AST engine is "
        "unavailable (CI uses this so the gate cannot silently weaken)",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="run the embedded rule self-tests and exit",
    )
    args = parser.parse_args()

    if args.self_test:
        return self_test(args.root,
                         require_ast=args.require_ast
                         or args.engine == "ast")

    import ast_engine

    ast_active = False
    build_dir = None
    if args.engine in ("auto", "ast"):
        reason = ast_engine.availability()
        if reason is None:
            build_dir = resolve_compile_db(args.root,
                                           args.compile_commands)
            if build_dir is None:
                reason = (
                    "compile_commands.json not found (configure with "
                    "`cmake -B build -S .` or pass --compile-commands)"
                )
        if reason is None:
            ast_active = True
        else:
            if args.engine == "ast" or args.require_ast:
                print(
                    "acdse_lint: AST engine required but unavailable: "
                    f"{reason}",
                    file=sys.stderr,
                )
                return 2
            print(
                f"acdse_lint: note: falling back to regex engine "
                f"({reason})",
                file=sys.stderr,
            )

    files: list[Path] = []
    for top in SOURCE_DIRS:
        base = args.root / top
        if not base.is_dir():
            continue
        files.extend(
            rel
            for p in sorted(base.rglob("*"))
            if p.suffix in SOURCE_SUFFIXES and p.is_file()
            and not (rel := p.relative_to(args.root)).is_relative_to(
                FIXTURE_DIR)
        )

    findings: list[str] = []
    for rel in files:
        findings.extend(lint_file(args.root, rel, ast_active=ast_active))

    if ast_active:
        analyzer = ast_engine.Analyzer(args.root)
        analyzer.lint_compile_db(build_dir)
        line_cache: dict = {}
        for rel, lineno, rule, message in sorted(analyzer.findings):
            if Path(rel).is_relative_to(FIXTURE_DIR):
                continue
            if ast_suppressed(args.root, rel, lineno, rule, line_cache):
                continue
            findings.append(f"{rel}:{lineno}: [acdse-{rule}] {message}")

    for finding in findings:
        print(finding)
    engine_name = "ast+regex" if ast_active else "regex"
    print(
        f"acdse_lint [{engine_name}]: {len(files)} files checked, "
        f"{len(findings)} finding(s)",
        file=sys.stderr,
    )
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
