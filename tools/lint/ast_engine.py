"""AST-grounded rule engine for acdse_lint, driven by libclang.

Where the regex engine in acdse_lint.py pattern-matches lines, this
engine walks real clang ASTs parsed from build/compile_commands.json
(every translation unit with its exact compile flags), so rules see
declarations, types, call targets, lambda captures and macro
expansions instead of text. It implements:

  - exact versions of the lexical rules that were fragile as regexes:
    acdse-deterministic-rng (call targets and declared types, not
    substrings), acdse-no-assert-macro (macro definitions and
    expansions from the preprocessing record), and
    acdse-obs-span-in-hot-loop (real loop/lambda ancestry instead of
    brace counting);

  - rules a regex cannot express at all:
      acdse-parallelfor-ref-capture   a by-reference capture written
                                      directly (x = / x += / ++x) inside
                                      a lambda passed to parallelFor;
                                      index-addressed writes (slots[i])
                                      and atomics are the sanctioned
                                      patterns and stay clean.
      acdse-local-static              mutable (non-const, non-atomic)
                                      function-local static state in
                                      src/: hidden shared state the
                                      thread-safety annotations cannot
                                      guard.
      acdse-raw-mutex                 std::mutex / std::shared_mutex /
                                      std::condition_variable declared
                                      in src/ outside base/sync.hh,
                                      where locking is invisible to
                                      -Wthread-safety.

The engine degrades explicitly: availability() names what is missing
(python bindings, a loadable libclang, compile_commands.json) and
acdse_lint falls back to the regex engine unless --require-ast.

Suppression is the same trailing  // NOLINT(acdse-<rule>)  convention,
applied by the caller on the reported line.
"""

from __future__ import annotations

import glob
import os
import re
import sys
from pathlib import Path

try:
    from clang import cindex
except ImportError as exc:  # pragma: no cover - environment-dependent
    cindex = None
    _IMPORT_ERROR = str(exc)
else:
    _IMPORT_ERROR = ""

# A finding is (rel_path, line, rule, message); rule without the
# "acdse-" prefix.
Finding = tuple[str, int, str, str]

#: Rules this engine takes over from the regex engine when active.
AST_RULES = (
    "deterministic-rng",
    "no-assert-macro",
    "obs-span-in-hot-loop",
    "raw-mutex",
    "parallelfor-ref-capture",
    "local-static",
)

MESSAGES = {
    "deterministic-rng": (
        "non-deterministic randomness; use acdse::Rng with an "
        "explicit seed"
    ),
    "no-assert-macro": (
        "ACDSE_ASSERT is retired; use ACDSE_CHECK or ACDSE_DCHECK "
        "from base/check.hh"
    ),
    "obs-span-in-hot-loop": (
        "TraceSpan constructed inside a loop body; spans are "
        "stage-granular -- hoist it out of the loop or record into an "
        "obs::Histogram instead"
    ),
    "parallelfor-ref-capture": (
        "by-reference capture written directly inside a parallelFor "
        "worker; write to an index-addressed slot (out[i] = ...) or "
        "use an atomic so parallel runs stay deterministic and "
        "race-free"
    ),
    "local-static": (
        "mutable function-local static: shared state invisible to the "
        "thread-safety annotations; make it const/atomic, guard it in "
        "a class behind base/sync.hh, or NOLINT with a reason"
    ),
    "raw-mutex": (
        "raw standard mutex/condition-variable type: locking through "
        "it is invisible to -Wthread-safety; use the annotated "
        "wrappers in base/sync.hh"
    ),
    "ast-parse": "translation unit failed to parse",
}

RNG_CALLS = {"rand", "srand", "time"}
MUTEX_TYPES = (
    "std::mutex",
    "std::shared_mutex",
    "std::recursive_mutex",
    "std::timed_mutex",
    "std::condition_variable",
)
SYNC_HEADER = ("src", "base", "sync.hh")

_availability: str | None = None
_availability_checked = False


def availability() -> str | None:
    """None when the engine can run, else a human-readable reason."""
    global _availability, _availability_checked
    if _availability_checked:
        return _availability
    _availability_checked = True
    if cindex is None:
        _availability = (
            f"python clang bindings unavailable ({_IMPORT_ERROR}); "
            "install python3-clang"
        )
        return _availability
    candidates: list[str | None] = [None]  # default loader search first
    if env := os.environ.get("ACDSE_LIBCLANG"):
        candidates.insert(0, env)
    for pattern in (
        "/usr/lib/llvm-*/lib/libclang.so*",
        "/usr/lib/llvm-*/lib/libclang-*.so*",
        "/usr/lib/*/libclang.so*",
        "/usr/lib/*/libclang-*.so.*",
    ):
        candidates.extend(sorted(glob.glob(pattern), reverse=True))
    last_error = "no libclang candidates found"
    for candidate in candidates:
        try:
            if candidate is not None:
                cindex.Config.set_library_file(candidate)
            cindex.Index.create()
            _availability = None
            return None
        except Exception as exc:  # LibclangError, OSError, ...
            last_error = str(exc).splitlines()[0] if str(exc) else repr(exc)
    _availability = (
        f"libclang not loadable ({last_error}); install libclang-dev "
        "or point ACDSE_LIBCLANG at libclang.so"
    )
    return _availability


def _kinds():
    """Cursor-kind sets, resolved lazily so import works without clang."""
    ck = cindex.CursorKind
    return {
        "func": {
            ck.FUNCTION_DECL,
            ck.CXX_METHOD,
            ck.CONSTRUCTOR,
            ck.DESTRUCTOR,
            ck.CONVERSION_FUNCTION,
            ck.FUNCTION_TEMPLATE,
        },
        "loop": {
            ck.FOR_STMT,
            ck.WHILE_STMT,
            ck.DO_STMT,
            ck.CXX_FOR_RANGE_STMT,
        },
        "decl": {ck.VAR_DECL, ck.FIELD_DECL, ck.PARM_DECL},
    }


class Analyzer:
    """One lint pass over translation units rooted at @p root.

    Findings accumulate deduplicated across TUs (the same header is
    seen once per includer); paths are reported root-relative.
    """

    def __init__(self, root: Path):
        self.root = root.resolve()
        self.index = cindex.Index.create()
        self.findings: set[Finding] = set()
        self.kinds = _kinds()

    # -- parsing ------------------------------------------------------

    def lint_compile_db(self, build_dir: Path) -> list[str]:
        """Analyze every TU in the compilation database.

        Returns the list of TUs that failed to parse (also recorded as
        ast-parse findings so a broken database cannot pass silently).
        """
        db = cindex.CompilationDatabase.fromDirectory(str(build_dir))
        failures: list[str] = []
        seen: set[Path] = set()
        for command in db.getAllCompileCommands():
            source = Path(command.directory) / command.filename
            source = source.resolve()
            rel = self._rel_path(source)
            if rel is None or source in seen:
                continue
            seen.add(source)
            args = _sanitize_args(list(command.arguments))
            if not self._lint_one(str(source), args, unsaved=None):
                failures.append(str(rel))
        return failures

    def lint_snippet(self, virtual_path: str, code: str,
                     args: tuple[str, ...] = ("-std=c++20",)) -> bool:
        """Analyze an in-memory snippet under a virtual repo path."""
        path = str(self.root / virtual_path)
        return self._lint_one(path, list(args) + ["-x", "c++"],
                              unsaved=[(path, code)])

    def _lint_one(self, path: str, args: list[str], unsaved) -> bool:
        options = (
            cindex.TranslationUnit.PARSE_DETAILED_PROCESSING_RECORD
        )
        try:
            tu = self.index.parse(path, args=args,
                                  unsaved_files=unsaved,
                                  options=options)
        except cindex.TranslationUnitLoadError:
            self._record_parse_failure(path)
            return False
        fatal = [d for d in tu.diagnostics
                 if d.severity >= cindex.Diagnostic.Fatal]
        if fatal:
            self._record_parse_failure(path, fatal[0].spelling)
            return False
        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old_limit, 20000))
        try:
            for child in tu.cursor.get_children():
                if self._rel_of(child) is None:
                    continue  # system headers and builtins
                self._visit(child, func_depth=0, markers=[])
        finally:
            sys.setrecursionlimit(old_limit)
        return True

    def _record_parse_failure(self, path: str, detail: str = ""):
        rel = self._rel_path(Path(path))
        name = str(rel) if rel else path
        message = MESSAGES["ast-parse"]
        if detail:
            message += f" ({detail})"
        self.findings.add((name, 1, "ast-parse", message))

    # -- location helpers ---------------------------------------------

    def _rel_path(self, path: Path) -> Path | None:
        try:
            return path.resolve().relative_to(self.root)
        except ValueError:
            return None

    def _rel_of(self, cursor) -> Path | None:
        location = cursor.location
        if location.file is None:
            return None
        return self._rel_path(Path(location.file.name))

    # -- the walk -----------------------------------------------------

    def _visit(self, cursor, func_depth: int, markers: list[str]):
        ck = cindex.CursorKind
        kind = cursor.kind

        if kind in (ck.MACRO_INSTANTIATION, ck.MACRO_DEFINITION):
            if cursor.spelling == "ACDSE_ASSERT":
                self._flag(cursor, "no-assert-macro")
            return  # macro cursors have no useful children

        if kind == ck.CALL_EXPR:
            self._check_call(cursor)
        elif kind in self.kinds["decl"]:
            self._check_decl(cursor, func_depth, markers)

        pushed = None
        if kind in self.kinds["loop"]:
            pushed = "loop"
        elif kind == ck.LAMBDA_EXPR:
            pushed = "lambda"
            func_depth += 1
        elif kind in self.kinds["func"]:
            pushed = "func"
            func_depth += 1
        if pushed:
            markers.append(pushed)
        try:
            for child in cursor.get_children():
                self._visit(child, func_depth, markers)
        finally:
            if pushed:
                markers.pop()

    def _flag(self, cursor, rule: str):
        rel = self._rel_of(cursor)
        if rel is None:
            return
        self.findings.add(
            (str(rel), cursor.location.line, rule, MESSAGES[rule]))

    # -- rule: calls (deterministic-rng, parallelfor) -----------------

    def _check_call(self, cursor):
        callee = cursor.referenced
        if (callee is not None
                and callee.kind == cindex.CursorKind.FUNCTION_DECL
                and callee.spelling in RNG_CALLS):
            self._flag(cursor, "deterministic-rng")
        if _names_parallel_for(cursor):
            rel = self._rel_of(cursor)
            if rel is not None and rel.parts and \
                    rel.parts[0] in ("src", "bench", "tools"):
                for lam in _lambdas_of_call(cursor):
                    self._check_worker_lambda(lam)

    def _check_worker_lambda(self, lam):
        """Flag direct writes to by-reference captures in a worker."""
        ck = cindex.CursorKind
        local_decls = set()
        for node in _walk(lam):
            if node.kind in (ck.VAR_DECL, ck.PARM_DECL):
                local_decls.add(_loc_key(node))
        for node in _walk(lam):
            target = _write_target(node)
            if target is None:
                continue
            target = _unwrap(target)
            if target.kind != ck.DECL_REF_EXPR:
                continue  # subscripted / member writes are sanctioned
            ref = target.referenced
            if ref is None or ref.kind not in (ck.VAR_DECL, ck.PARM_DECL):
                continue
            if _loc_key(ref) in local_decls:
                continue  # the worker's own locals and parameters
            if "atomic" in ref.type.spelling:
                continue
            self._flag(target, "parallelfor-ref-capture")

    # -- rule: declarations (rng type, statics, raw mutexes, spans) ---

    def _check_decl(self, cursor, func_depth: int, markers: list[str]):
        ck = cindex.CursorKind
        rel = self._rel_of(cursor)
        if rel is None:
            return
        type_spelling = cursor.type.spelling

        if "random_device" in type_spelling:
            self._flag(cursor, "deterministic-rng")

        in_src = bool(rel.parts) and rel.parts[0] == "src"
        if not in_src:
            return

        if rel.parts[:3] != SYNC_HEADER:
            canonical = cursor.type.get_canonical().spelling
            if any(t in canonical or t in type_spelling
                   for t in MUTEX_TYPES):
                self._flag(cursor, "raw-mutex")

        if (cursor.kind == ck.VAR_DECL and func_depth > 0
                and cursor.storage_class == cindex.StorageClass.STATIC):
            # The spelling check catches arrays-of-const, where the
            # constness sits on the element type, not the array type.
            if not (cursor.type.is_const_qualified()
                    or re.search(r"\bconst\b", type_spelling)
                    or "atomic" in type_spelling):
                self._flag(cursor, "local-static")

        if cursor.kind == ck.VAR_DECL and "TraceSpan" in type_spelling:
            # Nearest enclosing scope marker decides: a loop flags, a
            # lambda or function boundary exempts (the parallelFor
            # worker body is the per-task stage).
            for marker in reversed(markers):
                if marker == "loop":
                    self._flag(cursor, "obs-span-in-hot-loop")
                break


# -- cursor utilities -------------------------------------------------


def _walk(cursor):
    for child in cursor.get_children():
        yield child
        yield from _walk(child)


def _loc_key(cursor):
    location = cursor.location
    name = location.file.name if location.file is not None else None
    return (name, location.offset)


def _unwrap(cursor):
    ck = cindex.CursorKind
    while cursor.kind in (ck.UNEXPOSED_EXPR, ck.PAREN_EXPR):
        children = list(cursor.get_children())
        if len(children) != 1:
            break
        cursor = children[0]
    return cursor


def _binary_op_is_assign(cursor) -> bool:
    """True when a BINARY_OPERATOR cursor is plain assignment."""
    op = getattr(cursor, "binary_operator", None)
    enum = getattr(cindex, "BinaryOperator", None)
    if op is not None and enum is not None and op != enum.Invalid:
        return op == enum.Assign
    # Older bindings: the operator token is the first token at or past
    # the end of the left operand.
    children = list(cursor.get_children())
    if len(children) != 2:
        return False
    lhs_end = children[0].extent.end.offset
    for token in cursor.get_tokens():
        if token.extent.start.offset >= lhs_end:
            return token.spelling == "="
    return False


def _write_target(cursor):
    """The written operand of an assignment/increment, else None."""
    ck = cindex.CursorKind
    children = list(cursor.get_children())
    if cursor.kind == ck.COMPOUND_ASSIGNMENT_OPERATOR and children:
        return children[0]
    if cursor.kind == ck.BINARY_OPERATOR and len(children) == 2:
        return children[0] if _binary_op_is_assign(cursor) else None
    if cursor.kind == ck.UNARY_OPERATOR and children:
        spellings = [t.spelling for t in cursor.get_tokens()]
        if "++" in spellings[:1] + spellings[-1:]:
            return children[0]
        if "--" in spellings[:1] + spellings[-1:]:
            return children[0]
    return None


def _names_parallel_for(call) -> bool:
    if call.spelling == "parallelFor":
        return True
    children = list(call.get_children())
    if not children:
        return False
    callee = children[0]
    if callee.spelling == "parallelFor":
        return True
    return any(k.spelling == "parallelFor"
               for k in callee.get_children())


def _find_lambdas(cursor):
    """Outermost LAMBDA_EXPR nodes in a subtree."""
    if cursor.kind == cindex.CursorKind.LAMBDA_EXPR:
        return [cursor]
    found = []
    for child in cursor.get_children():
        found.extend(_find_lambdas(child))
    return found


def _lambdas_of_call(call):
    ck = cindex.CursorKind
    args = list(call.get_arguments())
    if not args:
        args = list(call.get_children())[1:]
    lambdas = []
    for arg in args:
        found = _find_lambdas(arg)
        if found:
            lambdas.extend(found)
            continue
        base = _unwrap(arg)
        if base.kind == ck.DECL_REF_EXPR:
            ref = base.referenced
            if ref is not None and ref.kind == ck.VAR_DECL:
                lambdas.extend(_find_lambdas(ref))
    return lambdas


def _sanitize_args(arguments: list[str]) -> list[str]:
    """Compile-command argv -> libclang parse args.

    Drops the compiler (and a ccache-style launcher prefix), the
    source file, and output/dependency options, and silences
    diagnostics we do not consume.
    """
    args = arguments[1:]
    if args and not args[0].startswith("-") and re.search(
            r"(?:^|/)(?:cc|c\+\+|gcc|g\+\+|clang|clang\+\+)[^/]*$",
            args[0]):
        args = args[1:]
    out: list[str] = []
    skip_next = False
    for arg in args:
        if skip_next:
            skip_next = False
            continue
        if arg == "-c":
            continue
        if arg in ("-o", "-MF", "-MT", "-MQ"):
            skip_next = True
            continue
        if not arg.startswith("-") and re.search(
                r"\.(?:cc|cpp|cxx|c)$", arg):
            continue
        out.append(arg)
    out.append("-Wno-everything")
    return out


# -- self-test --------------------------------------------------------

_STUBS = """
namespace std {
class mutex { };
class shared_mutex { };
class condition_variable { };
class random_device { public: unsigned operator()(); };
template <typename T> class atomic {
  public:
    T fetch_add(T);
    atomic &operator+=(T);
    T load() const;
};
}
namespace acdse { namespace obs {
class TraceSpan { public: explicit TraceSpan(int &stage); };
} }
struct Pool {
    void parallelFor(unsigned long begin, unsigned long end,
                     void (*body)(unsigned long));
    template <typename F>
    void parallelFor(unsigned long begin, unsigned long end, F f)
    {
        f(begin);
    }
};
extern "C" int rand();
extern "C" long time(long *);
"""
_STUB_LINES = _STUBS.count("\n")

# (name, virtual path, snippet, expected {(line, rule)}) -- lines are
# relative to the snippet, after the shared stub prologue.
SELF_TEST_CASES = [
    (
        "rand() call flags",
        "src/case.cc",
        "int f() { return rand(); }",
        {(1, "deterministic-rng")},
    ),
    (
        "std::random_device declaration flags",
        "src/case.cc",
        "unsigned f() {\n    std::random_device rd;\n    return rd();\n}",
        {(2, "deterministic-rng")},
    ),
    (
        "time(nullptr) seed flags",
        "src/case.cc",
        "long f() { return time(nullptr); }",
        {(1, "deterministic-rng")},
    ),
    (
        "ACDSE_ASSERT macro definition and use flag",
        "src/case.cc",
        "#define ACDSE_ASSERT(x) (void)(x)\n"
        "void f() { ACDSE_ASSERT(1); }",
        {(1, "no-assert-macro"), (2, "no-assert-macro")},
    ),
    (
        "span in for body flags",
        "src/case.cc",
        "void f(int &stage, int n) {\n"
        "    for (int i = 0; i < n; ++i) {\n"
        "        const acdse::obs::TraceSpan span(stage);\n"
        "    }\n"
        "}",
        {(3, "obs-span-in-hot-loop")},
    ),
    (
        "span in parallelFor worker lambda is clean",
        "src/case.cc",
        "void f(Pool &pool, int &stage, unsigned long n) {\n"
        "    for (unsigned long w = 0; w < n; ++w) {\n"
        "        pool.parallelFor(0, n, [&](unsigned long) {\n"
        "            const acdse::obs::TraceSpan span(stage);\n"
        "        });\n"
        "    }\n"
        "}",
        set(),
    ),
    (
        "span outside loops is clean",
        "src/case.cc",
        "void f(int &stage, int n) {\n"
        "    const acdse::obs::TraceSpan span(stage);\n"
        "    for (int i = 0; i < n; ++i) { }\n"
        "}",
        set(),
    ),
    (
        "span in loop in tests/ is exempt",
        "tests/case.cc",
        "void f(int &stage, int n) {\n"
        "    for (int i = 0; i < n; ++i) {\n"
        "        const acdse::obs::TraceSpan span(stage);\n"
        "    }\n"
        "}",
        set(),
    ),
    (
        "compound-assign to by-ref capture flags",
        "src/case.cc",
        "double f(Pool &pool, const double *in, unsigned long n) {\n"
        "    double sum = 0.0;\n"
        "    pool.parallelFor(0, n, [&](unsigned long i) {\n"
        "        sum += in[i];\n"
        "    });\n"
        "    return sum;\n"
        "}",
        {(4, "parallelfor-ref-capture")},
    ),
    (
        "index-addressed slot write is clean",
        "src/case.cc",
        "void f(Pool &pool, double *out, unsigned long n) {\n"
        "    pool.parallelFor(0, n, [&](unsigned long i) {\n"
        "        double local = 1.0;\n"
        "        local += 2.0;\n"
        "        out[i] = local;\n"
        "    });\n"
        "}",
        set(),
    ),
    (
        "atomic capture write is clean",
        "src/case.cc",
        "void f(Pool &pool, unsigned long n) {\n"
        "    std::atomic<unsigned long> done{};\n"
        "    pool.parallelFor(0, n, [&](unsigned long) {\n"
        "        done.fetch_add(1);\n"
        "    });\n"
        "}",
        set(),
    ),
    (
        "named worker lambda is resolved and flagged",
        "src/case.cc",
        "void f(Pool &pool, unsigned long n) {\n"
        "    unsigned long hits = 0;\n"
        "    const auto worker = [&](unsigned long) { ++hits; };\n"
        "    pool.parallelFor(0, n, worker);\n"
        "}",
        {(3, "parallelfor-ref-capture")},
    ),
    (
        "mutable local static flags; const and atomic are exempt",
        "src/case.cc",
        "int f() {\n"
        "    static int calls = 0;\n"
        "    static const int base = 3;\n"
        "    static std::atomic<int> safe{};\n"
        "    return ++calls + base + safe.load();\n"
        "}",
        {(2, "local-static")},
    ),
    (
        "local static outside src/ is exempt",
        "tools/case.cc",
        "int f() {\n"
        "    static int calls = 0;\n"
        "    return ++calls;\n"
        "}",
        set(),
    ),
    (
        "raw mutex member in src/ flags",
        "src/case.cc",
        "class Queue {\n"
        "    std::mutex mutex_;\n"
        "    std::condition_variable cv_;\n"
        "};",
        {(2, "raw-mutex"), (3, "raw-mutex")},
    ),
    (
        "raw mutex in base/sync.hh and outside src/ is exempt",
        "src/base/sync.hh",
        "class Mutex {\n"
        "    std::mutex raw_;\n"
        "};",
        set(),
    ),
]


def run_self_test(root: Path, verbose: bool = True) -> int:
    """Run embedded AST cases; returns the number of failures."""
    failures = 0
    for name, virtual_path, snippet, expected in SELF_TEST_CASES:
        analyzer = Analyzer(root)
        code = _STUBS + snippet
        analyzer.lint_snippet(virtual_path, code)
        got = {
            (line - _STUB_LINES, rule)
            for (_, line, rule, _) in analyzer.findings
        }
        ok = got == expected
        failures += not ok
        if verbose:
            status = "ok" if ok else "FAIL"
            print(f"{status}: [ast] {name} "
                  f"(expected {sorted(expected)}, got {sorted(got)})")
    return failures


EXPECT_RE = re.compile(r"//\s*EXPECT:\s*acdse-([a-z-]+)")


def check_fixture(root: Path, fixture: Path,
                  virtual_path: str) -> list[str]:
    """Lint one fixture file against its embedded EXPECT comments.

    Fixtures are hermetic snippets (no system includes) annotated with
    ``// EXPECT: acdse-<rule>`` on each line that must flag. Returns a
    list of mismatch descriptions (empty = pass).
    """
    code = fixture.read_text(encoding="utf-8")
    expected = set()
    for lineno, line in enumerate(code.splitlines(), 1):
        for match in EXPECT_RE.finditer(line):
            expected.add((lineno, match.group(1)))
    analyzer = Analyzer(root)
    analyzer.lint_snippet(virtual_path, code)
    got = {(line, rule) for (_, line, rule, _) in analyzer.findings}
    problems = []
    for line, rule in sorted(expected - got):
        problems.append(
            f"{fixture.name}:{line}: expected acdse-{rule}, not found")
    for line, rule in sorted(got - expected):
        problems.append(
            f"{fixture.name}:{line}: unexpected acdse-{rule}")
    return problems
