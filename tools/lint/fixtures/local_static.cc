// AST-engine self-test fixture for acdse-local-static. Parsed
// hermetically under the virtual path src/lint_fixtures/..., where the
// src/-scoped rule applies. Mutable function-local statics flag;
// const / atomic ones (and namespace-scope globals) are exempt.

namespace std
{
template <typename T> class atomic
{
  public:
    T load() const;
    atomic &operator++();
};
} // namespace std

int namespaceScopeIsExempt = 0; // globals are clang-tidy's business

int
badCounter()
{
    static int calls = 0; // EXPECT: acdse-local-static
    return ++calls;
}

struct Cache
{
    int lookup()
    {
        static Cache *instance = nullptr; // EXPECT: acdse-local-static
        return instance ? 1 : 0;
    }
};

int
goodConstTable(int i)
{
    static const int table[3] = {1, 2, 3};
    static constexpr int scale = 7;
    return table[i % 3] * scale;
}

long
goodAtomic()
{
    static std::atomic<long> hits{};
    return hits.load();
}
