// AST-engine self-test fixture for acdse-parallelfor-ref-capture.
// Parsed hermetically under the virtual path src/lint_fixtures/...
// Flagged lines carry EXPECT comments; the index-addressed and atomic
// variants below them are the sanctioned patterns and must stay clean.

namespace std
{
template <typename T> class atomic
{
  public:
    T fetch_add(T);
    T load() const;
};
template <typename T> class vector
{
  public:
    T &operator[](unsigned long);
    unsigned long size() const;
};
} // namespace std

struct ThreadPool
{
    template <typename F>
    void parallelFor(unsigned long begin, unsigned long end, F body)
    {
        for (unsigned long i = begin; i < end; ++i)
            body(i);
    }
};

double
badAccumulate(ThreadPool &pool, const std::vector<double> &in)
{
    double sum = 0.0;
    unsigned long count = 0;
    pool.parallelFor(0, in.size(), [&](unsigned long i) {
        sum += in[i]; // EXPECT: acdse-parallelfor-ref-capture
        ++count;      // EXPECT: acdse-parallelfor-ref-capture
    });
    return sum;
}

double
badLastWriter(ThreadPool &pool, const std::vector<double> &in)
{
    double last = 0.0;
    pool.parallelFor(0, in.size(), [&](unsigned long i) {
        last = in[i]; // EXPECT: acdse-parallelfor-ref-capture
    });
    return last;
}

void
badNamedWorker(ThreadPool &pool, unsigned long n)
{
    unsigned long hits = 0;
    const auto worker = [&](unsigned long) {
        hits += 1; // EXPECT: acdse-parallelfor-ref-capture
    };
    pool.parallelFor(0, n, worker);
}

void
goodSlots(ThreadPool &pool, const std::vector<double> &in,
          std::vector<double> &out)
{
    std::atomic<unsigned long> done{};
    pool.parallelFor(0, in.size(), [&](unsigned long i) {
        double local = in[i]; // worker-local state is fine
        local += 1.0;
        out[i] = local; // index-addressed slot: deterministic
        done.fetch_add(1);
    });
}
