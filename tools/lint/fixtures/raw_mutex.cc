// AST-engine self-test fixture for acdse-raw-mutex. Parsed hermetically
// (no system headers) under the virtual path src/lint_fixtures/..., so
// the src/-scoped rule applies. Lines that must flag carry an
// EXPECT comment; everything else must stay clean.

namespace std
{
class mutex
{
};
class shared_mutex
{
};
class condition_variable
{
};
template <typename M> class unique_lock
{
  public:
    explicit unique_lock(M &);
};
} // namespace std

namespace acdse
{
class Mutex
{
};
class SharedMutex
{
};
class CondVar
{
};

class BadQueue
{
    std::mutex mutex_;            // EXPECT: acdse-raw-mutex
    std::shared_mutex rw_;        // EXPECT: acdse-raw-mutex
    std::condition_variable cv_;  // EXPECT: acdse-raw-mutex
};

class SuppressedQueue
{
    std::mutex legacy_; // NOLINT(acdse-raw-mutex) -- suppression is
                        // applied by the caller, so the engine still
                        // reports this line:
                        // EXPECT: acdse-raw-mutex
};

void
badLocal(std::mutex &shared) // EXPECT: acdse-raw-mutex
{
    const std::unique_lock<std::mutex> lock(shared); // EXPECT: acdse-raw-mutex
}

class GoodQueue
{
    Mutex mutex_;
    SharedMutex rw_;
    CondVar cv_;
};
} // namespace acdse
