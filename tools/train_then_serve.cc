/**
 * @file
 * train_then_serve: the end-to-end offline/online split, as a tool.
 *
 * 1. Train: run a simulation campaign over a set of training programs
 *    (T configurations each) plus one target program, train the
 *    architecture-centric predictor for every metric, and fit the
 *    target's responses (R cheap simulations).
 * 2. Persist: save everything as one model artifact.
 * 3. Serve: reload the artifact in this same process exactly the way a
 *    fresh server would, verify the loaded predictors are bit-identical
 *    to the trained ones, and serve a held-out evaluation batch through
 *    the PredictionService, reporting accuracy and throughput.
 *
 * The artifact this writes is directly consumable by acdse-serve:
 *
 *   train_then_serve --out vpr.acdse --target vpr
 *   ... generate query rows ...
 *   acdse-serve --model vpr.acdse --input queries.csv
 *
 * Campaign scale honours the usual ACDSE_* environment knobs; without
 * them a reduced default keeps this tool interactive (~a minute).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "base/logging.hh"
#include "base/parse.hh"
#include "base/statistics.hh"
#include "core/campaign.hh"
#include "obs/stats_export.hh"
#include "serve/prediction_service.hh"

using namespace acdse;

namespace
{

struct CliOptions
{
    std::string outPath = "trained.acdse";
    std::string target = "vpr";
    std::vector<std::string> trainingPrograms{
        "gzip", "crafty", "swim", "mesa", "twolf", "mcf", "equake",
        "ammp"};
    std::size_t trainSims = 128; //!< T: simulations per training program
    std::size_t responses = 32;  //!< R: simulations of the target
    std::string statsOut; //!< acdse-stats-v1 dump path (empty = none)
};

std::vector<std::string>
splitList(const std::string &list)
{
    std::vector<std::string> out;
    std::string item;
    for (char c : list) {
        if (c == ',') {
            if (!item.empty())
                out.push_back(item);
            item.clear();
        } else {
            item.push_back(c);
        }
    }
    if (!item.empty())
        out.push_back(item);
    return out;
}

CliOptions
parseArgs(int argc, char **argv)
{
    CliOptions options;
    auto value = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            fatal("missing value after ", argv[i]);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--out")) {
            options.outPath = value(i);
        } else if (!std::strcmp(argv[i], "--target")) {
            options.target = value(i);
        } else if (!std::strcmp(argv[i], "--train-programs")) {
            options.trainingPrograms = splitList(value(i));
        } else if (!std::strcmp(argv[i], "--train-sims")) {
            options.trainSims = static_cast<std::size_t>(
                parseU64OrDie("--train-sims", value(i)));
        } else if (!std::strcmp(argv[i], "--responses")) {
            options.responses = static_cast<std::size_t>(
                parseU64OrDie("--responses", value(i)));
        } else if (!std::strcmp(argv[i], "--stats-out")) {
            options.statsOut = value(i);
        } else {
            std::fprintf(
                stderr,
                "usage: %s [--out FILE] [--target PROGRAM]\n"
                "          [--train-programs a,b,c] [--train-sims T]\n"
                "          [--responses R] [--stats-out FILE]\n",
                argv[0]);
            std::exit(2);
        }
    }
    if (options.trainingPrograms.empty())
        fatal("need at least one training program");
    if (options.trainSims == 0 || options.responses == 0)
        fatal("--train-sims and --responses must be positive");
    return options;
}

} // namespace

int
main(int argc, char **argv)
{
    const CliOptions cli = parseArgs(argc, argv);

    // --- 1. Simulate and train ---------------------------------------
    CampaignOptions campaign_options = CampaignOptions::fromEnvironment();
    if (!std::getenv("ACDSE_CONFIGS")) {
        // Enough for T training points, R responses and a held-out
        // evaluation slice, while staying interactive.
        campaign_options.numConfigs = cli.trainSims + cli.responses + 64;
    }
    if (campaign_options.numConfigs < cli.trainSims + cli.responses)
        fatal("campaign has ", campaign_options.numConfigs,
              " configs but T+R needs ",
              cli.trainSims + cli.responses);

    std::vector<std::string> programs = cli.trainingPrograms;
    programs.push_back(cli.target);
    Campaign campaign(programs, campaign_options);
    campaign.ensureComputed();

    std::vector<std::size_t> train_idx, response_idx, eval_idx;
    for (std::size_t c = 0; c < campaign.configs().size(); ++c) {
        if (c < cli.trainSims)
            train_idx.push_back(c);
        else if (c < cli.trainSims + cli.responses)
            response_idx.push_back(c);
        else
            eval_idx.push_back(c);
    }
    const auto train_configs = campaign.configsAt(train_idx);
    const auto response_configs = campaign.configsAt(response_idx);
    const std::size_t target_row = campaign.programIndex(cli.target);

    ModelArtifact artifact;
    artifact.setTag("train_then_serve target=" + cli.target + " T=" +
                    std::to_string(cli.trainSims) + " R=" +
                    std::to_string(cli.responses));
    for (Metric metric : kAllMetrics) {
        std::vector<ProgramTrainingSet> sets;
        for (const auto &name : cli.trainingPrograms) {
            ProgramTrainingSet set;
            set.name = name;
            set.configs = train_configs;
            set.values = campaign.metricAt(campaign.programIndex(name),
                                           metric, train_idx);
            sets.push_back(std::move(set));
        }
        ArchitectureCentricPredictor predictor;
        predictor.trainOffline(sets);
        predictor.fitResponses(
            response_configs,
            campaign.metricAt(target_row, metric, response_idx));
        std::printf("trained %-9s ensemble of %zu ANNs, response "
                    "training error %.1f%%\n",
                    metricName(metric), cli.trainingPrograms.size(),
                    predictor.trainingErrorPercent());
        artifact.add(metric, std::move(predictor));
    }

    // --- 2. Persist ---------------------------------------------------
    saveArtifact(cli.outPath, artifact);
    std::printf("saved artifact '%s' (%zu bytes)\n", cli.outPath.c_str(),
                encodeArtifact(artifact).size());

    // --- 3. Reload and serve ------------------------------------------
    ModelArtifact loaded = loadArtifact(cli.outPath);
    const auto probes = campaign.configsAt(eval_idx);
    for (Metric metric : kAllMetrics) {
        for (const auto &probe : probes) {
            const double fresh = artifact.predictor(metric).predict(probe);
            const double reloaded =
                loaded.predictor(metric).predict(probe);
            if (fresh != reloaded)
                fatal("loaded predictor diverges from trained one (",
                      metricName(metric), ": ", fresh, " vs ", reloaded,
                      ")");
        }
    }
    std::printf("reload check: %zu x %zu predictions bit-identical "
                "after save+load\n",
                kNumMetrics, probes.size());

    PredictionService service(std::move(loaded));
    const auto rows = service.predict(probes);
    std::vector<double> predicted, actual;
    for (std::size_t i = 0; i < probes.size(); ++i) {
        predicted.push_back(rows[i].get(Metric::Cycles));
        actual.push_back(
            campaign.result(target_row, eval_idx[i]).cycles);
    }
    const ServiceStats stats = service.stats();
    std::printf("served %zu held-out points: cycles rmae %.1f%%, "
                "correlation %.3f, batch latency %.2f ms (%.0f "
                "points/s)\n",
                probes.size(), stats::rmae(predicted, actual),
                stats::correlation(predicted, actual), stats.lastMs,
                stats.pointsPerSecond());
    if (!cli.statsOut.empty()) {
        // The global registry carries campaign/train/fit/pool metrics;
        // the service's private registry carries the serve/ ones.
        obs::Snapshot snap = obs::Registry::global().snapshot();
        snap.merge(service.statsSnapshot());
        obs::writeStatsFile(cli.statsOut, snap);
        std::printf("wrote stage/metric stats (%s) to %s\n",
                    std::string(obs::kStatsSchema).c_str(),
                    cli.statsOut.c_str());
    }

    std::printf("\nServe this artifact with:\n  acdse-serve --model %s "
                "--input queries.csv\n",
                cli.outPath.c_str());
    return 0;
}
